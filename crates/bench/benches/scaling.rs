//! E07/E08/E14/E16 — the measurable complexity claims: polynomial-time
//! invariant construction (Theorem 3.5), invariant isomorphism as the
//! homeomorphism test (Theorem 3.4), class-defining sentence construction
//! (Proposition 5.1 / Theorem 5.6), and the data complexity of FO(Rect, Rect)
//! evaluation (Theorem 6.4).

use arrangement::split::{instance_segments, split_segments_naive};
use arrangement::sweep::split_segments_sweep;
use bench::{CONSTRUCTION_SIZES, SCALING_SIZES};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use invariant::Invariant;
use query::rect_eval::RectEvaluator;
use std::hint::black_box;
use std::time::Duration;

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800))
}

/// E08 — Theorem 3.5: cell complex + invariant construction over a sweep of
/// grid-map sizes (polynomial scaling is the claim being reproduced).
fn thm35_invariant_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm35_invariant_construction");
    for (n, inst) in datagen::scaling_sweep(&CONSTRUCTION_SIZES) {
        group.bench_with_input(BenchmarkId::from_parameter(n), &inst, |b, inst| {
            b.iter(|| {
                let inv = Invariant::of_instance(inst);
                assert!(inv.euler_formula_holds());
                black_box(inv)
            })
        });
    }
    group.finish();
}

/// The splitter shoot-out behind Theorem 3.5's tractability: Bentley–Ottmann
/// plane sweep (`O((n + k) log n)`) vs. the naive all-pairs oracle
/// (`O(n^2)`), on the same segment sets — both the shared-edge grid map
/// (endpoint-degenerate, `k ~ 0` proper crossings) and the dense overlap map
/// (`k = Theta(n)` proper crossings). The acceptance gate for the sweep:
/// it must win at the top of `CONSTRUCTION_SIZES` on both workloads.
fn splitting_sweep_vs_naive(c: &mut Criterion) {
    let mut group = c.benchmark_group("splitting_sweep_vs_naive");
    for (n, inst) in datagen::scaling_sweep(&CONSTRUCTION_SIZES) {
        let segs = instance_segments(&inst);
        group.bench_with_input(BenchmarkId::new("sweep/grid", n), &segs, |b, segs| {
            b.iter(|| black_box(split_segments_sweep(segs)))
        });
        group.bench_with_input(BenchmarkId::new("naive/grid", n), &segs, |b, segs| {
            b.iter(|| black_box(split_segments_naive(segs)))
        });
    }
    for (n, inst) in datagen::dense_scaling_sweep(&CONSTRUCTION_SIZES) {
        let segs = instance_segments(&inst);
        group.bench_with_input(BenchmarkId::new("sweep/dense", n), &segs, |b, segs| {
            b.iter(|| black_box(split_segments_sweep(segs)))
        });
        group.bench_with_input(BenchmarkId::new("naive/dense", n), &segs, |b, segs| {
            b.iter(|| black_box(split_segments_naive(segs)))
        });
    }
    group.finish();
}

/// E07 — Theorem 3.4: homeomorphism testing via invariant isomorphism, on a
/// grid map against a translated copy (isomorphic) and against a map with one
/// parcel enlarged to overlap its neighbor (not isomorphic).
fn thm34_isomorphism_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm34_invariant_isomorphism");
    for (n, inst) in datagen::scaling_sweep(&SCALING_SIZES) {
        let inv = Invariant::of_instance(&inst);
        let moved = Invariant::of_instance(&inst.translated(1000, -500));
        group.bench_with_input(BenchmarkId::new("isomorphic", n), &(), |b, _| {
            b.iter(|| assert!(invariant::isomorphic(&inv, &moved)))
        });
        let mut perturbed = inst.clone();
        let first = perturbed.names()[0].to_string();
        perturbed.insert(
            first,
            spatial_core::region::Region::rect_from_ints(0, 0, 6, 6),
        );
        let perturbed_inv = Invariant::of_instance(&perturbed);
        group.bench_with_input(BenchmarkId::new("not_isomorphic", n), &(), |b, _| {
            b.iter(|| assert!(!invariant::isomorphic(&inv, &perturbed_inv)))
        });
    }
    group.finish();
}

/// E14 — Proposition 5.1 / Theorem 5.6: generating the class-defining
/// sentence φ_{T_I} is polynomial in the invariant size.
fn thm56_sentence_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm56_class_defining_sentence");
    for (n, inst) in datagen::scaling_sweep(&SCALING_SIZES) {
        let inv = Invariant::of_instance(&inst);
        group.bench_with_input(BenchmarkId::from_parameter(n), &inv, |b, inv| {
            b.iter(|| black_box(query::complete::class_defining_sentence(inv).size()))
        });
    }
    group.finish();
}

/// E16 — Theorem 6.4 / 6.5: data complexity of FO(Rect, Rect) evaluation: a
/// fixed one-quantifier query over growing numbers of rectangle regions, and
/// a fixed instance with growing quantifier depth (query complexity).
fn thm64_rect_data_complexity(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm64_rect_data_complexity");
    let query_text = "exists r . overlap(r, R000) and overlap(r, R001)";
    let formula = query::parse(query_text).unwrap();
    for n in [3usize, 5, 8] {
        let inst = datagen::random_rectangles(n, 40, 11);
        let evaluator = RectEvaluator::new(&inst).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(n), &evaluator, |b, ev| {
            b.iter(|| black_box(ev.eval(&formula).unwrap()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("thm65_rect_query_complexity");
    let inst = datagen::random_rectangles(4, 30, 5);
    let evaluator = RectEvaluator::new(&inst).unwrap();
    let queries = [
        ("depth1", "exists r . overlap(r, R000)"),
        ("depth2", "exists r . exists s . overlap(r, R000) and disjoint(r, s)"),
    ];
    for (label, text) in queries {
        let formula = query::parse(text).unwrap();
        group.bench_function(label, |b| b.iter(|| black_box(evaluator.eval(&formula).unwrap())));
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = config();
    targets = splitting_sweep_vs_naive, thm35_invariant_scaling, thm34_isomorphism_scaling,
              thm56_sentence_generation, thm64_rect_data_complexity
}
criterion_main!(benches);
