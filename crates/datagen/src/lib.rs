//! # datagen
//!
//! Deterministic workload generators for the test suite and the benchmark
//! harness: parameterized families of spatial instances whose size can be
//! swept to measure the scaling behaviour of the invariant construction,
//! isomorphism checking and query evaluation (the paper's polynomial-time /
//! NC claims).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use spatial_core::prelude::*;

/// A "land-use map": an `rows x cols` grid of axis-parallel rectangular
/// parcels, each a named region, adjacent parcels meeting along shared edges.
///
/// This is the workload for the invariant-scaling and thematic benchmarks:
/// the number of cells of the complex grows linearly with the number of
/// parcels, and every parcel pair stands in a `meet` or `disjoint` relation.
pub fn grid_map(cols: usize, rows: usize, cell_size: i64) -> SpatialInstance {
    assert!(cols > 0 && rows > 0 && cell_size > 0);
    let mut inst = SpatialInstance::new();
    for r in 0..rows {
        for c in 0..cols {
            let x1 = c as i64 * cell_size;
            let y1 = r as i64 * cell_size;
            let name = format!("P{:03}_{:03}", r, c);
            inst.insert(name, Region::rect_from_ints(x1, y1, x1 + cell_size, y1 + cell_size));
        }
    }
    inst
}

/// `n` nested rectangles (`R0 ⊃ R1 ⊃ … ⊃ R(n-1)`), pairwise in the
/// `contains` relation; the cell complex is a chain of annuli.
pub fn nested_rings(n: usize) -> SpatialInstance {
    assert!(n > 0);
    let mut inst = SpatialInstance::new();
    let size = 4 * n as i64 + 4;
    for i in 0..n {
        let off = 2 * i as i64;
        inst.insert(
            format!("R{i:03}"),
            Region::rect_from_ints(off, off, size - off, size - off),
        );
    }
    inst
}

/// A chain of `n` rectangles in which consecutive ones overlap and
/// non-consecutive ones are disjoint.
pub fn overlapping_chain(n: usize) -> SpatialInstance {
    assert!(n > 0);
    let mut inst = SpatialInstance::new();
    for i in 0..n {
        let x = 6 * i as i64;
        inst.insert(format!("C{i:03}"), Region::rect_from_ints(x, 0, x + 8, 4));
    }
    inst
}

/// `n` pseudo-random axis-parallel rectangles with integer coordinates in
/// `[0, span)`, deterministic in the seed. Degenerate rectangles are avoided;
/// duplicates may occur only with astronomically small probability.
pub fn random_rectangles(n: usize, span: i64, seed: u64) -> SpatialInstance {
    assert!(n > 0 && span > 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = SpatialInstance::new();
    for i in 0..n {
        let x1 = rng.gen_range(0..span - 2);
        let y1 = rng.gen_range(0..span - 2);
        let w = rng.gen_range(1..=(span - x1 - 1).min(span / 3).max(1));
        let h = rng.gen_range(1..=(span - y1 - 1).min(span / 3).max(1));
        inst.insert(format!("R{i:03}"), Region::rect_from_ints(x1, y1, x1 + w, y1 + h));
    }
    inst
}

/// A "flower": `n` triangular petals sharing the origin, in pseudo-random
/// cyclic order determined by the seed. Exercises high-degree vertices and
/// the orientation relation.
pub fn flower(n: usize, seed: u64) -> SpatialInstance {
    assert!((3..=24).contains(&n), "flower size must be between 3 and 24");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..n).collect();
    // Fisher-Yates shuffle.
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        order.swap(i, j);
    }
    // Petal k occupies the angular sector around direction k; use integer
    // points on a coarse circle to stay exact.
    let dirs: [(i64, i64); 24] = [
        (40, 0), (39, 10), (35, 20), (28, 28), (20, 35), (10, 39), (0, 40), (-10, 39),
        (-20, 35), (-28, 28), (-35, 20), (-39, 10), (-40, 0), (-39, -10), (-35, -20),
        (-28, -28), (-20, -35), (-10, -39), (0, -40), (10, -39), (20, -35), (28, -28),
        (35, -20), (39, -10),
    ];
    let step = 24 / n;
    let mut inst = SpatialInstance::new();
    for (slot, &petal) in order.iter().enumerate() {
        let (cx, cy) = dirs[slot * step];
        // A thin triangle from the origin toward (cx, cy).
        let perp = (-cy / 10, cx / 10);
        let poly = Polygon::new(vec![
            pt(0, 0),
            pt(cx - perp.0, cy - perp.1),
            pt(cx + perp.0, cy + perp.1),
        ])
        .expect("petal triangles are valid");
        inst.insert(format!("F{petal:02}"), Region::polygon(poly));
    }
    inst
}

/// A dense "land-use map with surveying errors": like [`grid_map`], but every
/// parcel is enlarged past its grid cell so it properly overlaps its right
/// and upper neighbors. Unlike the shared-edge grid, whose intersections are
/// all endpoint coincidences, this workload produces `Theta(n)` *proper
/// segment crossings* — the `k` term of the sweep's `O((n + k) log n)` bound.
pub fn dense_overlap_map(cols: usize, rows: usize, cell_size: i64) -> SpatialInstance {
    assert!(cols > 0 && rows > 0 && cell_size > 1);
    let overhang = cell_size / 2;
    let mut inst = SpatialInstance::new();
    for r in 0..rows {
        for c in 0..cols {
            let x1 = c as i64 * cell_size;
            let y1 = r as i64 * cell_size;
            let name = format!("P{:03}_{:03}", r, c);
            inst.insert(
                name,
                Region::rect_from_ints(x1, y1, x1 + cell_size + overhang, y1 + cell_size + overhang),
            );
        }
    }
    inst
}

/// A randomized dense single-component map: like [`dense_overlap_map`], but
/// every parcel's right/upper overhang is drawn pseudo-randomly (at least
/// `1`, so each parcel still properly overlaps its right and upper
/// neighbors, keeping the whole map one interaction component), and the
/// parcel corners are jittered within the cell. Deterministic in the seed.
///
/// This is the adversarial workload for the x-strip parallel sweep: one
/// big crossing-heavy component with an irregular endpoint-x distribution,
/// so the density-weighted seam placement and the seam reconciliation are
/// both exercised on geometry that is not axis-aligned-regular.
pub fn jittered_overlap_map(cols: usize, rows: usize, cell_size: i64, seed: u64) -> SpatialInstance {
    assert!(cols > 0 && rows > 0 && cell_size > 2);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = SpatialInstance::new();
    for r in 0..rows {
        for c in 0..cols {
            // Jitter stays below cell_size / 3; the overhang always exceeds
            // it, so every parcel properly overlaps its right and upper
            // neighbors whatever the draws — the map is one component.
            let x1 = c as i64 * cell_size + rng.gen_range(0..cell_size / 3 + 1);
            let y1 = r as i64 * cell_size + rng.gen_range(0..cell_size / 3 + 1);
            let over_x = rng.gen_range(cell_size / 3 + 1..=cell_size);
            let over_y = rng.gen_range(cell_size / 3 + 1..=cell_size);
            let name = format!("P{:03}_{:03}", r, c);
            inst.insert(
                name,
                Region::rect_from_ints(
                    x1,
                    y1,
                    (c as i64 + 1) * cell_size + over_x,
                    (r as i64 + 1) * cell_size + over_y,
                ),
            );
        }
    }
    inst
}

/// A cadastral "road network" map: a `cols x rows` sheet of quadrilateral
/// parcels over a *shared* jittered corner lattice, with a deterministic
/// pseudo-random quarter of the cells split along their diagonal into two
/// triangular parcels (the grid-with-diagonals shape of survey maps).
/// Deterministic in the seed.
///
/// Unlike [`jittered_overlap_map`], whose parcels properly cross, every
/// boundary here is *shared exactly*: neighboring parcels reuse the same
/// lattice corner points, so the arrangement is dominated by endpoint
/// coincidences, collinear shared edges and multi-region boundary marks
/// rather than proper crossings — the workload for the shared-boundary
/// handling of the sweep and for non-rectangular (`Polygon`) regions in
/// general. The whole sheet is one interaction component. Quadrilateral
/// parcels are named `Q{row:03}_{col:03}`; the two triangles of a split
/// cell `T{row:03}_{col:03}a` (lower-right) and `T{row:03}_{col:03}b`
/// (upper-left).
pub fn road_network_map(cols: usize, rows: usize, cell_size: i64, seed: u64) -> SpatialInstance {
    assert!(cols > 0 && rows > 0 && cell_size > 2);
    let mut rng = StdRng::seed_from_u64(seed);
    // Each lattice corner is jittered once and shared by every parcel
    // incident to it. Displacements stay within ±cell_size/8 < cell_size/6,
    // which keeps every triangle's orientation strictly positive and hence
    // every parcel simple.
    let jitter = (cell_size / 4).max(1);
    let mut corners = vec![vec![(0i64, 0i64); cols + 1]; rows + 1];
    for (r, row) in corners.iter_mut().enumerate() {
        for (c, corner) in row.iter_mut().enumerate() {
            let dx = rng.gen_range(0..jitter) - jitter / 2;
            let dy = rng.gen_range(0..jitter) - jitter / 2;
            *corner = (c as i64 * cell_size + dx, r as i64 * cell_size + dy);
        }
    }
    let mut inst = SpatialInstance::new();
    for r in 0..rows {
        for c in 0..cols {
            let p00 = corners[r][c];
            let p10 = corners[r][c + 1];
            let p11 = corners[r + 1][c + 1];
            let p01 = corners[r + 1][c];
            if rng.gen_range(0..4usize) == 0 {
                let lower = Polygon::from_ints(&[p00, p10, p11])
                    .expect("jittered lattice triangle is simple");
                let upper = Polygon::from_ints(&[p00, p11, p01])
                    .expect("jittered lattice triangle is simple");
                inst.insert(format!("T{r:03}_{c:03}a"), Region::polygon(lower));
                inst.insert(format!("T{r:03}_{c:03}b"), Region::polygon(upper));
            } else {
                let quad = Polygon::from_ints(&[p00, p10, p11, p01])
                    .expect("jittered lattice quad is simple");
                inst.insert(format!("Q{r:03}_{c:03}"), Region::polygon(quad));
            }
        }
    }
    inst
}

/// The side length of the area a [`clustered_map`] cluster draws its
/// rectangles in (a rectangle may stick out by at most `CLUSTER_SPAN / 2`).
pub const CLUSTER_SPAN: i64 = 20;

/// The grid pitch between cluster origins in a [`clustered_map`]: several
/// times [`CLUSTER_SPAN`], so distinct clusters can never interact.
pub const CLUSTER_GAP: i64 = CLUSTER_SPAN * 5;

/// The origin of cluster `c` in a [`clustered_map`] with `clusters` clusters
/// (clusters are laid out row-major on a near-square grid).
pub fn cluster_origin(c: usize, clusters: usize) -> (i64, i64) {
    let cols = (clusters as f64).sqrt().ceil() as i64;
    ((c as i64 % cols) * CLUSTER_GAP, (c as i64 / cols) * CLUSTER_GAP)
}

/// A pseudo-random rectangle inside cluster `c`'s area of a
/// [`clustered_map`] — the update generator used by the incremental
/// maintenance tests and benchmarks to target a single cluster.
pub fn cluster_rect(rng: &mut StdRng, c: usize, clusters: usize) -> Region {
    let (ox, oy) = cluster_origin(c, clusters);
    let x1 = ox + rng.gen_range(0..CLUSTER_SPAN - 2);
    let y1 = oy + rng.gen_range(0..CLUSTER_SPAN - 2);
    let w = rng.gen_range(2..=CLUSTER_SPAN / 2);
    let h = rng.gen_range(2..=CLUSTER_SPAN / 2);
    Region::rect_from_ints(x1, y1, x1 + w, y1 + h)
}

/// A clustered multi-component map: `clusters` spatially separated groups of
/// `regions_per_cluster` pseudo-random rectangles each, deterministic in the
/// seed.
///
/// Clusters are laid out on a coarse grid ([`cluster_origin`]) with gaps
/// several times the cluster span, so clusters never interact and the
/// interaction-graph partition of `arrangement` yields at least one
/// component per cluster (a sparse cluster may split into a few); within a
/// cluster the rectangles are drawn from a tight span so that most of them
/// genuinely interact. This is the workload of the incremental-maintenance
/// test suite and of the `incremental_update` benchmark group: region
/// `C{c:03}_R{r:03}` belongs to cluster `c`, so updates can target a single
/// cluster by construction ([`cluster_rect`]).
pub fn clustered_map(clusters: usize, regions_per_cluster: usize, seed: u64) -> SpatialInstance {
    assert!(clusters > 0 && regions_per_cluster > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = SpatialInstance::new();
    for c in 0..clusters {
        for r in 0..regions_per_cluster {
            inst.insert(format!("C{c:03}_R{r:03}"), cluster_rect(&mut rng, c, clusters));
        }
    }
    inst
}

/// A Zipf-skewed clustered map: like [`clustered_map`], but the `total`
/// regions are distributed over the `clusters` clusters with sizes
/// proportional to `1 / rank` (cluster 0 the largest), apportioned exactly by
/// largest-remainder rounding so the sizes always sum to `total` and every
/// cluster receives at least one region (requires `total >= clusters`).
/// Deterministic in the seed.
///
/// This is the skewed workload for the semi-join query planner: region
/// density — and hence bbox-neighbor counts and candidate-set sizes — varies
/// by orders of magnitude between the head cluster and the tail, so
/// selectivity ordering and index-driven candidate generation are exercised
/// on non-uniform data. Region `C{c:03}_R{r:03}` belongs to cluster `c`, as
/// in [`clustered_map`].
pub fn zipf_clustered_map(clusters: usize, total: usize, seed: u64) -> SpatialInstance {
    assert!(clusters > 0 && total >= clusters, "need at least one region per cluster");
    // Zipf weights 1/1, 1/2, ..., apportioned by largest remainder on top of
    // the guaranteed one region per cluster.
    let weights: Vec<f64> = (0..clusters).map(|c| 1.0 / (c + 1) as f64).collect();
    let weight_sum: f64 = weights.iter().sum();
    let spare = (total - clusters) as f64;
    let quotas: Vec<f64> = weights.iter().map(|w| spare * w / weight_sum).collect();
    let mut sizes: Vec<usize> = quotas.iter().map(|q| 1 + q.floor() as usize).collect();
    let mut order: Vec<usize> = (0..clusters).collect();
    order.sort_by(|&a, &b| {
        let (fa, fb) = (quotas[a].fract(), quotas[b].fract());
        fb.partial_cmp(&fa).unwrap_or(std::cmp::Ordering::Equal).then(a.cmp(&b))
    });
    let assigned: usize = sizes.iter().sum();
    for &c in order.iter().take(total - assigned) {
        sizes[c] += 1;
    }
    debug_assert_eq!(sizes.iter().sum::<usize>(), total);

    let mut rng = StdRng::seed_from_u64(seed);
    let mut inst = SpatialInstance::new();
    for (c, &size) in sizes.iter().enumerate() {
        for r in 0..size {
            inst.insert(format!("C{c:03}_R{r:03}"), cluster_rect(&mut rng, c, clusters));
        }
    }
    inst
}

/// A "wide" multi-component map: `components` spatially separated pairs of
/// overlapping rectangles, deterministic in the seed.
///
/// Every component is tiny (two pseudo-random rectangles that always
/// overlap) and components are laid out on a coarse grid with gaps several
/// times their span, so the interaction-graph partition of `arrangement`
/// yields exactly `components` groups of near-constant size. This is the
/// many-small-component workload where assembly cost and parallel sweeping
/// dominate — the sweet spot for the zero-copy `GlobalComplexView` (whose
/// assembly is `O(components)`, not `O(total cells)`) and for the
/// per-component worker pool. Region `W{c:04}_{A,B}` belongs to component
/// `c`.
pub fn wide_map(components: usize, seed: u64) -> SpatialInstance {
    assert!(components > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let span: i64 = 12;
    let pitch: i64 = span * 4;
    let cols = (components as f64).sqrt().ceil() as i64;
    let mut inst = SpatialInstance::new();
    for c in 0..components {
        let ox = (c as i64 % cols) * pitch;
        let oy = (c as i64 / cols) * pitch;
        // Rectangle A anchored at the component origin; rectangle B is A
        // translated diagonally by less than its size, so the two boundaries
        // always cross (never nest) and the pair forms exactly one
        // interaction component, well inside the pitch.
        let aw = rng.gen_range(4..=span - 4);
        let ah = rng.gen_range(4..=span - 4);
        let bx = ox + rng.gen_range(1..aw);
        let by = oy + rng.gen_range(1..ah);
        inst.insert(format!("W{c:04}_A"), Region::rect_from_ints(ox, oy, ox + aw, oy + ah));
        inst.insert(format!("W{c:04}_B"), Region::rect_from_ints(bx, by, bx + aw, by + ah));
    }
    inst
}

/// The instance-size sweep used by the scaling benchmarks: grid maps with
/// roughly `n` regions.
pub fn scaling_sweep(sizes: &[usize]) -> Vec<(usize, SpatialInstance)> {
    sizes
        .iter()
        .map(|&n| {
            let cols = (n as f64).sqrt().ceil() as usize;
            let rows = n.div_ceil(cols);
            (cols * rows, grid_map(cols, rows, 4))
        })
        .collect()
}

/// Like [`scaling_sweep`], but over [`dense_overlap_map`] instances: the
/// crossing-heavy companion sweep for the splitter benchmarks.
pub fn dense_scaling_sweep(sizes: &[usize]) -> Vec<(usize, SpatialInstance)> {
    sizes
        .iter()
        .map(|&n| {
            let cols = (n as f64).sqrt().ceil() as usize;
            let rows = n.div_ceil(cols);
            (cols * rows, dense_overlap_map(cols, rows, 4))
        })
        .collect()
}

/// One operation of an [`op_trace`] batch: insert (or replace) a named
/// region, or remove one.
///
/// Mirrors the facade's transaction ops without depending on it, so the
/// trace generator can be shared by the recovery differential suite and the
/// WAL benchmarks (both fold a trace into `TopoDatabase` batches) as well as
/// by oracle replays over a bare `SpatialInstance`.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TraceOp {
    /// Insert the region under the name, replacing any existing binding.
    Insert(String, Region),
    /// Remove the name (always targets a name live at that point in the
    /// trace).
    Remove(String),
}

/// A deterministic randomized commit trace: `steps` batches of 1–4
/// [`TraceOp`]s over the [`clustered_map`] geometry (fresh [`cluster_rect`]
/// rectangles across 4 clusters), mixing inserts of new names, replacements
/// of live names, and removals of live names.
///
/// The generator tracks the live-name set, so every `Remove` (and roughly a
/// third of the `Insert`s, as replacements) targets a name that exists at
/// that point in the trace; replaying the batches in order over an empty
/// instance is therefore always well-formed. Identical `(steps, seed)`
/// arguments yield byte-identical traces — the recovery differential suite
/// relies on this to crash-and-reopen the same workload many times, and the
/// `wal_commit` benchmark to log a stable op mix.
pub fn op_trace(steps: usize, seed: u64) -> Vec<Vec<TraceOp>> {
    const CLUSTERS: usize = 4;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut live: Vec<String> = Vec::new();
    let mut next_id: usize = 0;
    let mut trace = Vec::with_capacity(steps);
    for _ in 0..steps {
        let batch_len = rng.gen_range(1..=4);
        let mut batch = Vec::with_capacity(batch_len);
        for _ in 0..batch_len {
            let c = rng.gen_range(0..CLUSTERS);
            let region = cluster_rect(&mut rng, c, CLUSTERS);
            // Keep the live set growing on balance: remove ~1 in 4, replace
            // ~1 in 4, insert fresh otherwise.
            let roll = rng.gen_range(0..4u32);
            if roll == 0 && live.len() > 2 {
                let victim = live.swap_remove(rng.gen_range(0..live.len()));
                batch.push(TraceOp::Remove(victim));
            } else if roll == 1 && !live.is_empty() {
                let target = live[rng.gen_range(0..live.len())].clone();
                batch.push(TraceOp::Insert(target, region));
            } else {
                let name = format!("W{next_id:05}");
                next_id += 1;
                live.push(name.clone());
                batch.push(TraceOp::Insert(name, region));
            }
        }
        trace.push(batch);
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_map_counts_and_classes() {
        let g = grid_map(4, 3, 5);
        assert_eq!(g.len(), 12);
        assert_eq!(g.common_class(), RegionClass::Rect);
    }

    #[test]
    fn nested_and_chain() {
        let n = nested_rings(5);
        assert_eq!(n.len(), 5);
        let c = overlapping_chain(6);
        assert_eq!(c.len(), 6);
    }

    #[test]
    fn random_rectangles_deterministic() {
        let a = random_rectangles(10, 50, 42);
        let b = random_rectangles(10, 50, 42);
        assert_eq!(a, b);
        let c = random_rectangles(10, 50, 43);
        assert_ne!(a, c);
        assert_eq!(a.len(), 10);
    }

    #[test]
    fn flower_petals_touch_origin() {
        let f = flower(6, 7);
        assert_eq!(f.len(), 6);
        for (_, region) in f.iter() {
            assert_eq!(region.locate(&pt(0, 0)), Location::Boundary);
        }
        // Different seeds give different cyclic orders (almost surely).
        assert_ne!(flower(6, 7), flower(6, 8));
    }

    #[test]
    fn clustered_map_is_deterministic_and_separated() {
        let a = clustered_map(4, 3, 11);
        let b = clustered_map(4, 3, 11);
        assert_eq!(a, b);
        assert_ne!(a, clustered_map(4, 3, 12));
        assert_eq!(a.len(), 12);
        // Names encode the cluster, and clusters never overlap: all of
        // cluster 0 stays inside [0, 100) x [0, 100), cluster 1 starts at
        // x = 100.
        for (name, region) in a.iter() {
            let (x0, _, x1, _) = region.bounding_box();
            if name.starts_with("C000_") {
                assert!(x1 < Rational::from_int(100), "{name} leaks out of cluster 0");
            }
            if name.starts_with("C001_") {
                assert!(x0 >= Rational::from_int(100), "{name} leaks into cluster 0");
            }
        }
    }

    #[test]
    fn zipf_clustered_map_sizes_and_determinism() {
        let a = zipf_clustered_map(4, 20, 11);
        assert_eq!(a, zipf_clustered_map(4, 20, 11));
        assert_ne!(a, zipf_clustered_map(4, 20, 12));
        assert_eq!(a.len(), 20);
        // Cluster sizes are Zipf-skewed: counts decrease with rank and every
        // cluster is nonempty. Weights 1/1,1/2,1/3,1/4 over 16 spare regions
        // on top of 1 each → sizes [9, 5, 3, 3] or a largest-remainder
        // neighbor; check the shape rather than exact values.
        let count = |c: usize| {
            a.iter().filter(|(n, _)| n.starts_with(&format!("C{c:03}_"))).count()
        };
        let sizes: Vec<usize> = (0..4).map(count).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 20);
        assert!(sizes.windows(2).all(|w| w[0] >= w[1]), "sizes decrease: {sizes:?}");
        assert!(sizes[0] >= 2 * sizes[3], "head dominates tail: {sizes:?}");
        assert!(sizes.iter().all(|&s| s >= 1));
        // Clusters stay spatially separated, as in clustered_map.
        for (name, region) in a.iter() {
            let (x0, _, x1, _) = region.bounding_box();
            if name.starts_with("C000_") {
                assert!(x1 < Rational::from_int(100), "{name} leaks out of cluster 0");
            }
            if name.starts_with("C001_") {
                assert!(x0 >= Rational::from_int(100), "{name} leaks into cluster 0");
            }
        }
    }

    #[test]
    fn wide_map_is_deterministic_and_component_separated() {
        let a = wide_map(9, 3);
        assert_eq!(a, wide_map(9, 3));
        assert_ne!(a, wide_map(9, 4));
        assert_eq!(a.len(), 18, "two regions per component");
        // The two rectangles of a component always properly overlap, and
        // components never leave their grid cell (pitch 48).
        for c in 0..9usize {
            let ra = a.ext(&format!("W{c:04}_A")).unwrap();
            let rb = a.ext(&format!("W{c:04}_B")).unwrap();
            let (bx0, by0, _, _) = rb.bounding_box();
            assert_eq!(
                ra.locate(&Point::new(
                    bx0 + Rational::new(1, 2),
                    by0 + Rational::new(1, 2)
                )),
                Location::Inside,
                "component {c}: B's corner area lies inside A"
            );
            let (ax0, _, ax1, _) = ra.bounding_box();
            let cell = Rational::from_int(48);
            let col = Rational::from_int((c as i64 % 3) * 48);
            assert!(ax0 >= col && ax1 < col + cell, "component {c} stays in its grid cell");
        }
    }

    #[test]
    fn jittered_overlap_map_is_deterministic_and_overlapping() {
        let a = jittered_overlap_map(4, 3, 6, 17);
        assert_eq!(a, jittered_overlap_map(4, 3, 6, 17));
        assert_ne!(a, jittered_overlap_map(4, 3, 6, 18));
        assert_eq!(a.len(), 12);
        // Every parcel properly overlaps its right and upper neighbor: their
        // shared corner area contains interior points of both.
        for r in 0..3usize {
            for c in 0..4usize {
                let me = a.ext(&format!("P{:03}_{:03}", r, c)).unwrap();
                let (_, _, x2, y2) = me.bounding_box();
                if c + 1 < 4 {
                    let right = a.ext(&format!("P{:03}_{:03}", r, c + 1)).unwrap();
                    let (rx1, _, _, _) = right.bounding_box();
                    assert!(rx1 < x2, "parcel ({r},{c}) must overlap its right neighbor");
                }
                if r + 1 < 3 {
                    let up = a.ext(&format!("P{:03}_{:03}", r + 1, c)).unwrap();
                    let (_, uy1, _, _) = up.bounding_box();
                    assert!(uy1 < y2, "parcel ({r},{c}) must overlap its upper neighbor");
                }
            }
        }
    }

    #[test]
    fn road_network_map_is_deterministic_shared_boundary_sheet() {
        let a = road_network_map(5, 4, 8, 21);
        assert_eq!(a, road_network_map(5, 4, 8, 21));
        assert_ne!(a, road_network_map(5, 4, 8, 22));
        // One quad or two triangles per cell; with seed 21 both kinds occur.
        let quads = a.iter().filter(|(n, _)| n.starts_with('Q')).count();
        let tris = a.iter().filter(|(n, _)| n.starts_with('T')).count();
        assert_eq!(tris % 2, 0, "triangles come in diagonal pairs");
        assert_eq!(quads + tris / 2, 20, "every cell is covered");
        assert!(quads > 0 && tris > 0, "mixed parcel shapes");
        assert_eq!(a.common_class(), RegionClass::Poly);
        // Parcels are polygons over a shared lattice: cells stay within one
        // jitter of their nominal footprint.
        for (name, region) in a.iter() {
            let (x0, _, x1, _) = region.bounding_box();
            let c: i64 = name[5..8].parse().unwrap();
            assert!(x0 >= Rational::from_int(c * 8 - 2), "{name} within lattice");
            assert!(x1 <= Rational::from_int((c + 1) * 8 + 2), "{name} within lattice");
        }
    }

    #[test]
    fn scaling_sweep_sizes() {
        let sweep = scaling_sweep(&[4, 9, 16]);
        assert_eq!(sweep.len(), 3);
        for (n, inst) in sweep {
            assert_eq!(inst.len(), n);
        }
    }

    #[test]
    fn dense_overlap_map_overlaps_neighbors() {
        let m = dense_overlap_map(3, 2, 4);
        assert_eq!(m.len(), 6);
        // Horizontally adjacent parcels share interior points: the first
        // parcel reaches x=6 while its right neighbor starts at x=4.
        let a = m.ext("P000_000").unwrap();
        let b = m.ext("P000_001").unwrap();
        assert_eq!(a.locate(&pt(5, 2)), Location::Inside);
        assert_eq!(b.locate(&pt(5, 2)), Location::Inside);
        for (n, inst) in dense_scaling_sweep(&[4, 9]) {
            assert_eq!(inst.len(), n);
        }
    }

    #[test]
    fn op_trace_is_deterministic_and_well_formed() {
        let a = op_trace(40, 7);
        let b = op_trace(40, 7);
        assert_eq!(a, b, "same (steps, seed) yields the identical trace");
        assert_ne!(a, op_trace(40, 8), "the seed matters");
        assert_eq!(a.len(), 40);

        // Replaying over a live-name oracle: every Remove (and every
        // replacement Insert) targets a name that exists at that point.
        let mut live = std::collections::BTreeSet::new();
        let (mut removes, mut replaces) = (0usize, 0usize);
        for batch in &a {
            assert!((1..=4).contains(&batch.len()));
            for op in batch {
                match op {
                    TraceOp::Insert(name, _) => {
                        if !live.insert(name.clone()) {
                            replaces += 1;
                        }
                    }
                    TraceOp::Remove(name) => {
                        assert!(live.remove(name), "remove of dead name {name}");
                        removes += 1;
                    }
                }
            }
        }
        assert!(!live.is_empty(), "the live set grows on balance");
        assert!(removes > 0, "the mix includes removals");
        assert!(replaces > 0, "the mix includes replacements");
    }
}
