//! Crash-recovery differential suite: the durable database, crashed at
//! arbitrary byte offsets of its log and reopened, must be byte-identical
//! to an in-memory oracle that committed the same prefix of the workload.
//!
//! "Crash" here is file mutilation: the log directory is copied, the final
//! segment truncated (or a byte flipped) with the `wal::testing` helpers,
//! and the copy reopened. fsync policy is irrelevant to these tests — all
//! writes are in the page cache of this very process — so the suite runs
//! with `SyncPolicy::None` and exercises the *protocol*: log-before-publish
//! ordering, torn-tail truncation, replay equivalence, loud corruption.

use datagen::{op_trace, TraceOp};
use spatial_core::instance::SpatialInstance;
use spatial_core::wire::Wire;
use std::fs;
use std::path::{Path, PathBuf};
use topodb::query::PreparedQuery;
use topodb::{QueryOutput, SyncPolicy, TopoDatabase, TopoDbError, WalConfig};
use wal::testing::{flip_byte, record_boundaries, segment_files, truncate_at};
use wal::RealFs;
use wal::WalError;

/// A temp directory deleted on drop (even when the test panics).
struct Scratch(PathBuf);

impl Scratch {
    fn new(tag: &str) -> Scratch {
        let dir = std::env::temp_dir().join(format!("topodb-recovery-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).expect("create scratch dir");
        Scratch(dir)
    }

    fn path(&self) -> &Path {
        &self.0
    }

    /// A fresh empty subdirectory path (not yet created).
    fn sub(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for Scratch {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.0);
    }
}

/// Copy every regular file of `src` into a fresh `dst` — the "disk image"
/// a crash test mutilates, leaving the pristine log untouched.
fn copy_dir(src: &Path, dst: &Path) {
    let _ = fs::remove_dir_all(dst);
    fs::create_dir_all(dst).expect("create copy dir");
    for entry in fs::read_dir(src).expect("read log dir") {
        let entry = entry.expect("dir entry");
        if entry.file_type().expect("file type").is_file() {
            fs::copy(entry.path(), dst.join(entry.file_name())).expect("copy log file");
        }
    }
}

/// `expect_err` without a `Debug` bound on `TopoDatabase`.
fn open_err(dir: &Path, what: &str) -> TopoDbError {
    match TopoDatabase::open(dir) {
        Ok(_) => panic!("open unexpectedly succeeded: {what}"),
        Err(e) => e,
    }
}

fn open_at_err(dir: &Path, epoch: u64, what: &str) -> TopoDbError {
    match TopoDatabase::open_at(dir, epoch) {
        Ok(_) => panic!("open_at({epoch}) unexpectedly succeeded: {what}"),
        Err(e) => e,
    }
}

fn apply_batch(db: &mut TopoDatabase, batch: &[TraceOp]) {
    let mut tx = db.begin();
    for op in batch {
        match op {
            TraceOp::Insert(name, region) => {
                tx.insert(name.clone(), region.clone());
            }
            TraceOp::Remove(name) => {
                tx.remove(name.clone());
            }
        }
    }
    tx.commit();
}

/// Everything the differential compares at one epoch: the exact instance
/// bytes (names, boundary polygons, rational coordinates), the derived
/// topology the facade serves relations from, and the row set of an open
/// query over the whole instance.
#[derive(PartialEq, Eq, Debug, Clone)]
struct Fingerprint {
    instance_wire: Vec<u8>,
    relations: Vec<(String, String, relations::Relation4)>,
    query_rows: QueryOutput,
}

fn fingerprint(db: &TopoDatabase) -> Fingerprint {
    // A fully open two-variable query: its satisfying rows enumerate every
    // overlapping pair, so any divergence in the recovered arrangement
    // shows up as a changed row set.
    static OVERLAPS: std::sync::OnceLock<PreparedQuery> = std::sync::OnceLock::new();
    let overlaps = OVERLAPS.get_or_init(|| {
        PreparedQuery::compile("overlap(ext(x), ext(y))")
            .expect("the open overlap query compiles")
    });
    Fingerprint {
        instance_wire: db.instance().to_wire_vec(),
        relations: db.relation_matrix(),
        query_rows: db.snapshot().evaluate(overlaps).expect("the open query evaluates"),
    }
}

/// Replay the trace in a plain in-memory database, capturing the oracle
/// fingerprint after every batch. `oracle[e]` is the state at epoch `e`
/// (epoch 0 is the empty database the durable side was created with).
fn oracle_states(trace: &[Vec<TraceOp>]) -> Vec<Fingerprint> {
    let mut db = TopoDatabase::new();
    let mut states = vec![fingerprint(&db)];
    for batch in trace {
        apply_batch(&mut db, batch);
        states.push(fingerprint(&db));
    }
    states
}

fn no_sync() -> WalConfig {
    WalConfig::default().with_sync(SyncPolicy::None)
}

/// Create a durable database in `dir`, commit the whole trace, and
/// "crash": leak the database so no drop-time flush or cleanup tidies up
/// what a real power cut would have left behind.
fn commit_and_crash(dir: &Path, trace: &[Vec<TraceOp>], cfg: WalConfig) {
    let mut db =
        TopoDatabase::create_with_config(dir, SpatialInstance::new(), cfg).expect("create");
    for batch in trace {
        apply_batch(&mut db, batch);
    }
    std::mem::forget(db);
}

#[test]
fn reopen_after_crash_matches_the_in_memory_oracle() {
    let scratch = Scratch::new("reopen");
    let trace = op_trace(14, 0xD1F);
    let oracle = oracle_states(&trace);
    commit_and_crash(scratch.path(), &trace, no_sync());

    let mut reopened = TopoDatabase::open(scratch.path()).expect("reopen after crash");
    assert_eq!(reopened.update_epoch(), trace.len() as u64);
    assert!(reopened.durable());
    assert_eq!(fingerprint(&reopened), oracle[trace.len()], "byte-identical to the oracle");

    // The reopened database resumes the epoch numbering and stays in
    // lockstep with an oracle that commits the same continuation.
    let mut oracle_db = TopoDatabase::from_instance(SpatialInstance::new());
    let continuation = op_trace(18, 0xD1F);
    for batch in &continuation[..trace.len()] {
        apply_batch(&mut oracle_db, batch);
    }
    for batch in &continuation[trace.len()..] {
        apply_batch(&mut reopened, batch);
        apply_batch(&mut oracle_db, batch);
    }
    assert_eq!(reopened.update_epoch(), continuation.len() as u64);
    assert_eq!(fingerprint(&reopened), fingerprint(&oracle_db));

    // ... and the continuation itself is durable: crash again, reopen.
    std::mem::forget(reopened);
    let reopened = TopoDatabase::open(scratch.path()).expect("reopen after second crash");
    assert_eq!(reopened.update_epoch(), continuation.len() as u64);
    assert_eq!(fingerprint(&reopened), fingerprint(&oracle_db));
}

#[test]
fn crash_at_each_record_boundary_recovers_that_exact_epoch() {
    let scratch = Scratch::new("boundary");
    let trace = op_trace(10, 0xB0B);
    let oracle = oracle_states(&trace);
    let pristine = scratch.sub("pristine");
    commit_and_crash(&pristine, &trace, no_sync());

    let segments = segment_files(&RealFs, &pristine).expect("list segments");
    assert_eq!(segments.len(), 1, "small trace stays in one segment");
    let seg_name = segments[0].file_name().unwrap().to_owned();
    let bounds = record_boundaries(&RealFs, &segments[0]).expect("frame boundaries");
    assert_eq!(bounds.len(), trace.len() + 1, "header end + one boundary per record");

    for (epoch, &cut) in bounds.iter().enumerate() {
        let image = scratch.sub("image");
        copy_dir(&pristine, &image);
        truncate_at(&RealFs, &image.join(&seg_name), cut).expect("truncate image");

        let db = TopoDatabase::open(&image).expect("boundary cut is a clean state");
        assert_eq!(db.update_epoch(), epoch as u64, "cut at {cut}");
        assert_eq!(fingerprint(&db), oracle[epoch], "cut at boundary {cut}");
    }
}

#[test]
fn crash_at_every_byte_inside_the_final_record_truncates_the_torn_tail() {
    let scratch = Scratch::new("torn");
    let trace = op_trace(6, 0x70A);
    let oracle = oracle_states(&trace);
    let pristine = scratch.sub("pristine");
    commit_and_crash(&pristine, &trace, no_sync());

    let segments = segment_files(&RealFs, &pristine).expect("list segments");
    let seg_name = segments[0].file_name().unwrap().to_owned();
    let bounds = record_boundaries(&RealFs, &segments[0]).expect("frame boundaries");
    let last_start = bounds[bounds.len() - 2];
    let last_end = *bounds.last().unwrap();
    assert!(last_end > last_start + 8, "final record is non-trivial");

    // Every strictly-interior cut is a torn append of the final record:
    // recovery must truncate it away and land on the previous epoch.
    let torn_epoch = trace.len() - 1;
    for cut in last_start..last_end {
        let image = scratch.sub("image");
        copy_dir(&pristine, &image);
        truncate_at(&RealFs, &image.join(&seg_name), cut).expect("truncate image");

        let db = TopoDatabase::open(&image)
            .unwrap_or_else(|e| panic!("torn cut at byte {cut} must recover, got {e}"));
        assert_eq!(db.update_epoch(), torn_epoch as u64, "cut at byte {cut}");
        assert_eq!(fingerprint(&db), oracle[torn_epoch], "cut at byte {cut}");

        // Reopening truncated the torn bytes: the tail is writable again,
        // and committing the lost batch re-lands the final epoch.
        let mut db = db;
        apply_batch(&mut db, &trace[torn_epoch]);
        drop(db);
        let db = TopoDatabase::open(&image).expect("reopen after re-commit");
        assert_eq!(fingerprint(&db), oracle[trace.len()], "re-committed tail at cut {cut}");
    }
}

#[test]
fn corrupt_record_mid_log_fails_loudly_with_the_offending_offset() {
    let scratch = Scratch::new("corrupt");
    let trace = op_trace(8, 0xBAD);
    let pristine = scratch.sub("pristine");
    commit_and_crash(&pristine, &trace, no_sync());

    let segments = segment_files(&RealFs, &pristine).expect("list segments");
    let seg_name = segments[0].file_name().unwrap().to_owned();
    let bounds = record_boundaries(&RealFs, &segments[0]).expect("frame boundaries");

    // Flip a payload byte of the third record — mid-log, so this is bit
    // rot, not a torn tail, and recovery must refuse the whole log.
    let image = scratch.sub("image");
    copy_dir(&pristine, &image);
    flip_byte(&RealFs, &image.join(&seg_name), bounds[2] + 9).expect("flip byte");

    let err = open_err(&image, "mid-log corruption must not recover");
    let TopoDbError::Durability(WalError::Corrupt { segment, offset, .. }) = &err else {
        panic!("expected a Corrupt durability error, got {err:?}");
    };
    assert_eq!(segment.as_str(), seg_name.to_str().unwrap(), "error names the segment");
    assert_eq!(*offset, bounds[2], "error points at the corrupted record's start");

    // A truncated *interior* record (bytes missing mid-log) is equally
    // loud: the epochs after the cut are present but unreachable.
    let image = scratch.sub("image");
    copy_dir(&pristine, &image);
    let seg = image.join(&seg_name);
    let mut bytes = fs::read(&seg).unwrap();
    let (a, b) = (bounds[3] as usize, bounds[4] as usize);
    bytes.drain(a..b);
    fs::write(&seg, bytes).unwrap();
    let err = open_err(&image, "a missing interior record must not recover");
    assert!(
        matches!(err, TopoDbError::Durability(WalError::Corrupt { .. })),
        "expected Corrupt, got {err:?}"
    );
}

#[test]
fn open_at_replays_every_logged_epoch_and_is_detached() {
    let scratch = Scratch::new("openat");
    let trace = op_trace(9, 0x0A7);
    let oracle = oracle_states(&trace);
    commit_and_crash(scratch.path(), &trace, no_sync());

    for (epoch, expected) in oracle.iter().enumerate() {
        let db = TopoDatabase::open_at(scratch.path(), epoch as u64)
            .unwrap_or_else(|e| panic!("open_at({epoch}) failed: {e}"));
        assert_eq!(db.update_epoch(), epoch as u64);
        assert!(!db.durable(), "point-in-time views are detached");
        assert_eq!(&fingerprint(&db), expected, "open_at({epoch})");
    }

    // Past the head: the error reports the covered range.
    let requested = trace.len() as u64 + 1;
    let err = open_at_err(scratch.path(), requested, "past the head");
    assert_eq!(
        err,
        TopoDbError::Durability(WalError::UnknownEpoch {
            requested,
            oldest: 0,
            newest: trace.len() as u64,
        })
    );

    // Detached means detached: committing to a view leaves the log alone.
    let mut view = TopoDatabase::open_at(scratch.path(), 3).expect("open_at(3)");
    apply_batch(&mut view, &op_trace(1, 99)[0]);
    assert_eq!(view.update_epoch(), 4, "views commit in memory");
    let db = TopoDatabase::open(scratch.path()).expect("reopen");
    assert_eq!(db.update_epoch(), trace.len() as u64, "the log never saw the view's commit");
    assert_eq!(fingerprint(&db), oracle[trace.len()]);
}

#[test]
fn checkpoint_truncates_history_but_preserves_the_differential() {
    let scratch = Scratch::new("ckpt");
    let trace = op_trace(12, 0xC4F);
    let oracle = oracle_states(&trace);
    let ckpt_epoch = 7usize;

    let mut db =
        TopoDatabase::create_with_config(scratch.path(), SpatialInstance::new(), no_sync())
            .expect("create");
    for batch in &trace[..ckpt_epoch] {
        apply_batch(&mut db, batch);
    }
    db.checkpoint().expect("manual checkpoint");
    for batch in &trace[ckpt_epoch..] {
        apply_batch(&mut db, batch);
    }
    std::mem::forget(db);

    // Recovery replays checkpoint + tail to the same state as the oracle's
    // full history.
    let db = TopoDatabase::open(scratch.path()).expect("reopen after checkpoint");
    assert_eq!(db.update_epoch(), trace.len() as u64);
    assert_eq!(fingerprint(&db), oracle[trace.len()]);
    drop(db);

    // History before the checkpoint was truncated away; from it on, every
    // epoch is still reachable and differential-exact.
    for (epoch, expected) in oracle.iter().enumerate().skip(ckpt_epoch) {
        let db = TopoDatabase::open_at(scratch.path(), epoch as u64)
            .unwrap_or_else(|e| panic!("open_at({epoch}) after checkpoint: {e}"));
        assert_eq!(&fingerprint(&db), expected, "open_at({epoch}) after checkpoint");
    }
    let err = open_at_err(scratch.path(), ckpt_epoch as u64 - 1, "pre-checkpoint history is gone");
    assert_eq!(
        err,
        TopoDbError::Durability(WalError::UnknownEpoch {
            requested: ckpt_epoch as u64 - 1,
            oldest: ckpt_epoch as u64,
            newest: trace.len() as u64,
        })
    );
}

#[test]
fn automatic_checkpoints_and_rotation_survive_crashes_too() {
    let scratch = Scratch::new("auto");
    let trace = op_trace(20, 0xA07);
    let oracle = oracle_states(&trace);
    // Tiny thresholds: rotate segments eagerly and checkpoint every 6
    // records, so the crash lands on a multi-segment, checkpointed log.
    let cfg = no_sync().with_segment_max_bytes(512).with_checkpoint_every(6);
    commit_and_crash(scratch.path(), &trace, cfg);

    let db = TopoDatabase::open(scratch.path()).expect("reopen");
    assert_eq!(db.update_epoch(), trace.len() as u64);
    assert_eq!(fingerprint(&db), oracle[trace.len()]);
    drop(db);

    // The newest automatic checkpoint bounds the reachable history.
    let newest_ckpt = (trace.len() / 6) * 6;
    let err =
        open_at_err(scratch.path(), newest_ckpt as u64 - 1, "pre-checkpoint history is truncated");
    assert!(
        matches!(err, TopoDbError::Durability(WalError::UnknownEpoch { .. })),
        "expected UnknownEpoch, got {err:?}"
    );
    for (epoch, expected) in oracle.iter().enumerate().skip(newest_ckpt) {
        let db = TopoDatabase::open_at(scratch.path(), epoch as u64)
            .unwrap_or_else(|e| panic!("open_at({epoch}): {e}"));
        assert_eq!(&fingerprint(&db), expected, "open_at({epoch})");
    }
}
