//! Integration tests for the read/write split: immutable `Send + Sync`
//! snapshots, batched transactions that coalesce mutations into one epoch,
//! and prepared queries evaluated against snapshots of different epochs.

use spatial_core::prelude::*;
use std::sync::Arc;
use topodb::query::PreparedQuery;
use topodb::{QueryOutput, Snapshot, TopoDatabase};

fn clustered_db(clusters: usize, per_cluster: usize) -> TopoDatabase {
    TopoDatabase::from_instance(datagen::clustered_map(clusters, per_cluster, 4242))
}

/// Regression (bugfix): removing a nonexistent name must be a complete
/// no-op — no epoch bump, no component eviction, no rebuild at the next
/// read.
#[test]
fn remove_of_nonexistent_name_is_a_noop() {
    let mut db = clustered_db(4, 3);
    let _ = db.complex_view(); // warm all components
    let epoch_before = db.update_epoch();
    let builds_before = db.complex_build_count();
    let rebuilds_before = db.component_rebuild_count();
    let components_before = db.component_complexes();

    assert_eq!(db.remove("NoSuchRegion"), None);

    assert_eq!(db.update_epoch(), epoch_before, "no epoch bump for a no-op removal");
    let v = db.complex_view();
    assert_eq!(db.complex_build_count(), builds_before, "cached view survives");
    assert_eq!(db.component_rebuild_count(), rebuilds_before, "no component re-swept");
    drop(v);
    // Every cached component is still the same allocation.
    let components_after = db.component_complexes();
    assert_eq!(components_before.len(), components_after.len());
    for ((k1, c1), (k2, c2)) in components_before.iter().zip(&components_after) {
        assert_eq!(k1, k2);
        assert!(Arc::ptr_eq(c1, c2), "component {k1:?} was evicted by a no-op removal");
    }

    // Same through a transaction: a batch whose ops all miss changes nothing.
    let mut txn = db.begin();
    txn.remove("Ghost1").remove("Ghost2");
    let commit = txn.commit();
    assert_eq!(commit.epoch, epoch_before);
    assert!(commit.changed.is_empty());
    assert_eq!(db.update_epoch(), epoch_before);
}

/// The acceptance scenario of the read/write split: a `k`-mutation batch
/// commits with exactly one epoch bump; the next read performs exactly one
/// global assembly and re-sweeps only the union of the affected components;
/// a snapshot taken before the commit keeps answering for the old epoch.
#[test]
fn batch_commit_bumps_epoch_once_and_assembles_once() {
    let clusters = 8usize;
    let mut db = clustered_db(clusters, 3);
    let pre = db.snapshot();
    let epoch_before = db.update_epoch();
    let builds_before = db.complex_build_count();
    let rebuilds_before = db.component_rebuild_count();
    let names_before = db.names().len();

    // One batch touching clusters 0, 1 and 2: two inserts and one removal.
    let victim = db
        .names()
        .iter()
        .find(|n| n.starts_with("C002_"))
        .expect("cluster 2 has regions")
        .clone();
    let mut txn = db.begin();
    for (k, cluster) in [0usize, 1].iter().enumerate() {
        let (ox, oy) = datagen::cluster_origin(*cluster, clusters);
        let span = datagen::CLUSTER_SPAN;
        txn.insert(
            format!("Batch{k}"),
            Region::rect_from_ints(ox + 1, oy + 1, ox + span - 2, oy + span - 2),
        );
    }
    txn.remove(&victim);
    assert_eq!(txn.pending_ops(), 3);
    let commit = txn.commit();

    assert_eq!(commit.epoch, epoch_before + 1, "one epoch bump for the whole batch");
    assert_eq!(db.update_epoch(), epoch_before + 1);
    assert_eq!(commit.changed, vec!["Batch0".to_string(), "Batch1".to_string(), victim]);

    // One read after the batch: exactly one assembly, and only the affected
    // clusters are re-swept (each of the three touched clusters contributes
    // at most a few components after merging/splitting).
    let post = db.snapshot();
    assert_eq!(db.complex_build_count(), builds_before + 1, "one global assembly");
    let resweeps = db.component_rebuild_count() - rebuilds_before;
    assert!(
        (1..=6).contains(&resweeps),
        "only the union of affected clusters is re-swept, got {resweeps}"
    );

    // Epoch isolation: the old snapshot still answers for the old epoch.
    assert_eq!(pre.epoch(), epoch_before);
    assert_eq!(post.epoch(), epoch_before + 1);
    assert_eq!(pre.len(), names_before);
    assert_eq!(post.len(), names_before + 2 - 1);
    assert!(pre.names().iter().any(|n| *n == *commit.changed[2]));
    assert!(!post.names().iter().any(|n| *n == *commit.changed[2]));
    assert!(pre.relation("Batch0", "Batch1").is_err(), "old epoch has no batch regions");
    assert_eq!(
        post.relation("Batch0", "Batch1").unwrap(),
        topodb::relations::Relation4::Disjoint
    );
}

/// One `PreparedQuery` evaluated against snapshots from two different epochs
/// returns epoch-correct answers.
#[test]
fn prepared_query_reuse_across_epochs() {
    let mut db = TopoDatabase::new();
    let mut txn = db.begin();
    txn.insert("A", Region::rect_from_ints(0, 0, 10, 10));
    txn.insert("B", Region::rect_from_ints(2, 2, 6, 6));
    txn.commit();

    let inside_a = PreparedQuery::compile("inside(ext(x), A)").unwrap();
    let has_overlap = PreparedQuery::compile("existsname a . overlap(ext(a), A)").unwrap();

    let snap1 = db.snapshot();
    // Epoch 2: C appears inside A, and D overlaps A.
    let mut txn = db.begin();
    txn.insert("C", Region::rect_from_ints(7, 7, 9, 9));
    txn.insert("D", Region::rect_from_ints(8, 8, 14, 14));
    txn.commit();
    let snap2 = db.snapshot();

    let rows1 = snap1.evaluate(&inside_a).unwrap();
    let rows2 = snap2.evaluate(&inside_a).unwrap();
    let xs = |out: &QueryOutput| -> Vec<String> {
        out.bindings().unwrap().iter().map(|r| r["x"].clone()).collect()
    };
    assert_eq!(xs(&rows1), ["B"], "epoch-1 snapshot sees only B inside A");
    assert_eq!(xs(&rows2), ["B", "C"], "epoch-2 snapshot sees the committed batch");

    assert_eq!(snap1.evaluate(&has_overlap).unwrap(), QueryOutput::Bool(false));
    assert_eq!(snap2.evaluate(&has_overlap).unwrap(), QueryOutput::Bool(true));
}

/// `Snapshot` is `Send + Sync`: queried concurrently from scoped threads
/// over one shared reference, every thread sees the same epoch-consistent
/// answers.
#[test]
fn snapshot_is_queried_from_four_threads() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Snapshot>();

    let db = TopoDatabase::from_instance(spatial_core::fixtures::nested_three());
    let snap = db.snapshot();
    let q = PreparedQuery::compile("inside(ext(x), A)").unwrap();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let snap = &snap;
                let q = &q;
                scope.spawn(move || {
                    // Mix shared-evaluator prepared runs with ad-hoc parses.
                    let rows = snap.evaluate(q).unwrap();
                    let xs: Vec<String> =
                        rows.bindings().unwrap().iter().map(|r| r["x"].clone()).collect();
                    assert_eq!(xs, ["B", "C"], "thread {i}");
                    assert_eq!(
                        snap.query("contains(A, B) and inside(C, B)").unwrap(),
                        QueryOutput::Bool(true),
                        "thread {i}"
                    );
                    assert_eq!(snap.relation("A", "B").unwrap().name(), "contains");
                    snap.invariant().face_count()
                })
            })
            .collect();
        let counts: Vec<usize> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "all threads agree: {counts:?}");
    });
    // The concurrent burst shares one evaluator and one invariant.
    assert!(Arc::ptr_eq(&snap.evaluator(), &snap.evaluator()));
}

/// The database itself is `Sync` (`RwLock`-backed cache): four scoped
/// threads *acquire* snapshots concurrently from one shared
/// `&TopoDatabase` — not merely read through a pre-acquired snapshot —
/// and the cold build still happens exactly once.
#[test]
fn snapshots_are_acquired_concurrently_from_four_threads() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<TopoDatabase>();

    let db = clustered_db(4, 3);
    assert_eq!(db.complex_build_count(), 0, "nothing built before the burst");
    let snaps: Vec<Snapshot> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let db = &db;
                scope.spawn(move || {
                    let snap = db.snapshot();
                    // Every thread reads through its own freshly acquired
                    // snapshot while the others are still acquiring.
                    assert_eq!(snap.len(), 12);
                    let matrix = snap.relation_matrix();
                    assert_eq!(matrix.len(), 12 * 11 / 2);
                    snap
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    // All acquisitions observed the same epoch, and whichever thread won the
    // write lock built the complex exactly once for everyone.
    assert!(snaps.iter().all(|s| s.epoch() == snaps[0].epoch()));
    assert_eq!(db.complex_build_count(), 1, "concurrent acquisition builds once");
    for s in &snaps[1..] {
        assert!(
            Arc::ptr_eq(&s.complex_view(), &snaps[0].complex_view()),
            "every thread shares the one cached view"
        );
    }
}

/// `Snapshot::relations_of` returns one region's row of the relation
/// matrix, consistent with the full matrix.
#[test]
fn relations_of_matches_the_relation_matrix() {
    let db = TopoDatabase::from_instance(spatial_core::fixtures::nested_three());
    let snap = db.snapshot();
    let row = snap.relations_of("B").unwrap();
    assert_eq!(row.len(), snap.len() - 1);
    for (other, rel) in &row {
        let direct = snap.relation("B", other).unwrap();
        assert_eq!(*rel, direct, "B vs {other}");
    }
    assert!(snap.relations_of("Nope").is_err());
}

/// Rollback (explicit or by drop) leaves the database untouched.
#[test]
fn rollback_discards_buffered_operations() {
    let mut db = TopoDatabase::new();
    db.insert("A", Region::rect_from_ints(0, 0, 4, 4));
    let epoch = db.update_epoch();

    let mut txn = db.begin();
    txn.insert("B", Region::rect_from_ints(10, 0, 14, 4));
    txn.remove("A");
    txn.rollback();
    assert_eq!(db.names(), ["A"]);
    assert_eq!(db.update_epoch(), epoch);

    {
        let mut txn = db.begin();
        txn.insert("C", Region::rect_from_ints(20, 0, 24, 4));
        // dropped without commit
    }
    assert_eq!(db.names(), ["A"]);
    assert_eq!(db.update_epoch(), epoch);
}

/// Parse errors surfaced by the facade carry the byte position of the
/// offending token.
#[test]
fn parse_errors_point_at_the_offending_token() {
    let db = TopoDatabase::from_instance(spatial_core::fixtures::fig_1c());
    let err = db.snapshot().query("overlap(A, B) %").unwrap_err();
    assert_eq!(err.parse_position(), Some(14));
    assert!(err.to_string().contains("at byte 14"), "{err}");
    let err = db.query("overlap(A,").unwrap_err();
    assert_eq!(err.parse_position(), None);
    assert!(err.to_string().contains("at end of input"), "{err}");
}

/// Replacing a region with an identical one changes nothing: no epoch bump,
/// no eviction.
#[test]
fn identical_replacement_is_a_noop() {
    let mut db = TopoDatabase::new();
    db.insert("A", Region::rect_from_ints(0, 0, 4, 4));
    let _ = db.complex_view();
    let epoch = db.update_epoch();
    let builds = db.complex_build_count();

    let mut txn = db.begin();
    txn.insert("A", Region::rect_from_ints(0, 0, 4, 4));
    let commit = txn.commit();
    assert!(commit.changed.is_empty(), "identical geometry is not a change");
    assert_eq!(commit.epoch, epoch);
    let _ = db.complex_view();
    assert_eq!(db.complex_build_count(), builds, "cached view survives");
}

/// A replacement insert inside a transaction counts the name once and the
/// commit still coalesces into one epoch.
#[test]
fn replacement_and_duplicate_names_coalesce() {
    let mut db = TopoDatabase::new();
    db.insert("A", Region::rect_from_ints(0, 0, 4, 4));
    let epoch = db.update_epoch();

    let mut txn = db.begin();
    txn.insert("A", Region::rect_from_ints(0, 0, 6, 6));
    txn.insert("A", Region::rect_from_ints(0, 0, 8, 8));
    txn.insert("B", Region::rect_from_ints(1, 1, 3, 3));
    let commit = txn.commit();
    assert_eq!(commit.changed, ["A", "B"]);
    assert_eq!(commit.epoch, epoch + 1);
    assert_eq!(db.snapshot().relation("B", "A").unwrap().name(), "inside");
}
