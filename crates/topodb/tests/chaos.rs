//! Chaos differential suite — the headline robustness test.
//!
//! Randomized op traces (`datagen::op_trace`) run against a durable
//! database on the fault-injecting [`wal::SimFs`], under randomized fault
//! schedules ([`wal::FaultPlan::random`]): torn appends, `EINTR`s,
//! `ENOSPC`, failed fsyncs, hard power cuts. After the run the simulated
//! machine is power-cycled (every file drops back to its last *synced*
//! bytes) and the database reopened on the surviving state. For every
//! `(trace seed, fault seed)` combination the suite asserts:
//!
//! 1. **No acknowledged commit is lost.** The log runs
//!    [`SyncPolicy::PerCommit`], so `Ok` from `try_commit` means the
//!    record was fsynced: the recovered head must be at least the last
//!    acked epoch.
//! 2. **The recovered state is a prefix of the workload.** The head never
//!    exceeds the number of batches attempted — recovery cannot invent
//!    epochs.
//! 3. **Byte-identical to the oracle.** The recovered instance (exact
//!    wire bytes, rational coordinates and all) and its derived relation
//!    matrix equal an in-memory oracle that committed the same prefix.
//!
//! Every assertion message carries both seeds, so a failing schedule is
//! reproducible verbatim. `CHAOS_TRACES` / `CHAOS_FAULTS` scale the
//! matrix (defaults 10 × 20 = 200 combinations).

use datagen::{op_trace, TraceOp};
use spatial_core::instance::SpatialInstance;
use spatial_core::wire::Wire;
use std::sync::Arc;
use topodb::{Clock, RetryPolicy, StorageOptions, TopoDatabase, TopoDbError};
use wal::{FaultPlan, SimFs};

const DIR: &str = "/db";
/// Batches per trace: enough to cross segment-rotation and checkpoint
/// cadences at the tiny thresholds below.
const STEPS: usize = 6;

fn env_count(name: &str, default: usize) -> usize {
    std::env::var(name).ok().and_then(|v| v.trim().parse().ok()).unwrap_or(default)
}

/// Backoff sleeps are pointless on an in-memory filesystem.
#[derive(Debug)]
struct NoSleep;

impl Clock for NoSleep {
    fn sleep(&self, _d: std::time::Duration) {}
}

/// What the differential compares: the exact instance bytes plus the
/// derived topology the facade serves relations from.
#[derive(PartialEq, Eq, Debug, Clone)]
struct Fingerprint {
    instance_wire: Vec<u8>,
    relations: Vec<(String, String, relations::Relation4)>,
}

fn fingerprint(db: &TopoDatabase) -> Fingerprint {
    Fingerprint { instance_wire: db.instance().to_wire_vec(), relations: db.relation_matrix() }
}

fn apply_batch(db: &TopoDatabase, batch: &[TraceOp]) -> Result<(), TopoDbError> {
    let mut tx = db.begin_shared();
    for op in batch {
        match op {
            TraceOp::Insert(name, region) => {
                tx.insert(name.clone(), region.clone());
            }
            TraceOp::Remove(name) => {
                tx.remove(name.clone());
            }
        }
    }
    tx.try_commit().map(|_| ())
}

/// `oracle[e]` is the in-memory state at epoch `e` (epoch 0 is the empty
/// database the durable side was created with).
fn oracle_states(trace: &[Vec<TraceOp>]) -> Vec<Fingerprint> {
    let db = TopoDatabase::new();
    let mut states = vec![fingerprint(&db)];
    for batch in trace {
        apply_batch(&db, batch).expect("in-memory oracle commits cannot fail");
        states.push(fingerprint(&db));
    }
    states
}

/// Storage for the chaos run: per-commit fsync (so `Ok` = acked = synced),
/// tiny rotation/checkpoint thresholds (so schedules hit the maintenance
/// paths too), a small retry budget and no real sleeping.
fn chaos_options(sim: &SimFs) -> StorageOptions {
    let mut opts = StorageOptions::default()
        .with_vfs(Arc::new(sim.clone()))
        .with_retry(RetryPolicy::default().with_max_attempts(3))
        .with_clock(Arc::new(NoSleep));
    opts.wal = opts.wal.with_segment_max_bytes(512).with_checkpoint_every(4);
    opts
}

/// Run one `(trace, fault schedule)` combination end to end.
fn run_combo(trace: &[Vec<TraceOp>], oracle: &[Fingerprint], trace_seed: u64, fault_seed: u64) {
    let ctx = format!("trace_seed={trace_seed:#x} fault_seed={fault_seed:#x}");
    let sim = SimFs::new();
    sim.set_plan(FaultPlan::random(fault_seed, 96));

    let mut acked: u64 = 0;
    let mut attempted: u64 = 0;
    // A creation fault (header/checkpoint write) leaves nothing acked;
    // the reopen below still checks that invariant.
    if let Ok(db) = TopoDatabase::create_with_storage(DIR, SpatialInstance::new(), chaos_options(&sim))
    {
        for batch in trace {
            attempted += 1;
            match apply_batch(&db, batch) {
                Ok(()) => acked = db.update_epoch(),
                // Degradation is terminal for this handle; later batches
                // would only be rejected.
                Err(TopoDbError::Degraded(_)) => break,
                Err(e) => panic!("[{ctx}] commit failed un-typed: {e}"),
            }
        }
        // Crash: no drop-time flush — only synced bytes survive.
        std::mem::forget(db);
    }

    sim.power_cycle(); // also clears the fault plan: recovery runs clean
    let reopened =
        TopoDatabase::open_with_storage(DIR, StorageOptions::default().with_vfs(Arc::new(sim)));
    let db = match reopened {
        Ok(db) => db,
        Err(e) => {
            // Only a database that never acked anything may fail to
            // reopen (the creation fault left no valid header behind).
            assert_eq!(acked, 0, "[{ctx}] reopen failed ({e}) after an acked commit");
            return;
        }
    };

    let head = db.update_epoch();
    assert!(head >= acked, "[{ctx}] lost an acked commit: recovered {head}, acked {acked}");
    assert!(head <= attempted, "[{ctx}] recovered {head} epochs, attempted only {attempted}");
    assert_eq!(
        fingerprint(&db),
        oracle[head as usize],
        "[{ctx}] recovered epoch {head} diverges from the oracle"
    );

    // The recovered database accepts writes again: the chaos left no
    // latent corruption behind.
    apply_batch(&db, &op_trace(1, trace_seed ^ 0xFFFF)[0])
        .unwrap_or_else(|e| panic!("[{ctx}] post-recovery commit failed: {e}"));
    assert_eq!(db.update_epoch(), head + 1, "[{ctx}] post-recovery epoch");
}

#[test]
fn randomized_fault_schedules_never_lose_an_acked_commit() {
    let traces = env_count("CHAOS_TRACES", 10);
    let faults = env_count("CHAOS_FAULTS", 20);
    for t in 0..traces {
        let trace_seed = 0xC0DE + 7919 * t as u64;
        let trace = op_trace(STEPS, trace_seed);
        let oracle = oracle_states(&trace);
        for f in 0..faults {
            let fault_seed = 0xFA17 + 104729 * f as u64;
            run_combo(&trace, &oracle, trace_seed, fault_seed);
        }
    }
}

#[test]
fn a_fault_free_schedule_recovers_every_epoch() {
    // Control arm: the same machinery with no faults must ack and recover
    // the entire trace (guards against the chaos loop passing vacuously).
    let trace = op_trace(STEPS, 0x5EED);
    let oracle = oracle_states(&trace);
    let sim = SimFs::new();
    let db = TopoDatabase::create_with_storage(DIR, SpatialInstance::new(), chaos_options(&sim))
        .expect("create without faults");
    for batch in &trace {
        apply_batch(&db, batch).expect("fault-free commits succeed");
    }
    assert_eq!(db.update_epoch(), trace.len() as u64);
    std::mem::forget(db);

    sim.power_cycle();
    let db =
        TopoDatabase::open_with_storage(DIR, StorageOptions::default().with_vfs(Arc::new(sim)))
            .expect("reopen");
    assert_eq!(db.update_epoch(), trace.len() as u64, "every acked commit recovered");
    assert_eq!(fingerprint(&db), oracle[trace.len()]);
}
