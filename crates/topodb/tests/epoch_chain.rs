//! The epoch chain vs the legacy `RwLock` cache, held equal and hammered.
//!
//! Three suites:
//!
//! 1. **Randomized interleaved differential** — a deterministic schedule of
//!    batched commits and reads replayed against a chain database and a
//!    legacy (`TOPODB_EPOCH_CHAIN=off`-equivalent) database side by side;
//!    after every step the epochs, commit summaries, relation matrices and
//!    prepared-query rows must be byte-identical, and long-lived snapshots
//!    from earlier epochs must keep answering for their epoch on both.
//! 2. **Concurrent stress** — N reader threads acquiring snapshots while M
//!    writers commit disjoint and overlapping component sets through
//!    [`TopoDatabase::begin_shared`]; every reader asserts epoch
//!    monotonicity and internal consistency, and the final state must equal
//!    the legacy oracle applying each writer's final sub-state (writers own
//!    their name spaces, so the final instance is interleaving-independent).
//! 3. **Pointer-identical reuse** — commits must carry every untouched
//!    `Arc<ComponentComplex>` of their base epoch into the published epoch
//!    unchanged, including across concurrent disjoint commits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use topodb::query::PreparedQuery;
use topodb::spatial_core::prelude::*;
use topodb::TopoDatabase;

const CLUSTERS: usize = 6;
const PER_CLUSTER: usize = 3;

fn chain_db(seed: u64) -> TopoDatabase {
    TopoDatabase::from_instance_with_epoch_chain(
        datagen::clustered_map(CLUSTERS, PER_CLUSTER, seed),
        true,
    )
}

fn legacy_db(seed: u64) -> TopoDatabase {
    TopoDatabase::from_instance_with_epoch_chain(
        datagen::clustered_map(CLUSTERS, PER_CLUSTER, seed),
        false,
    )
}

/// Byte-comparable digest of everything a reader can observe: epoch, names,
/// the full relation matrix, and the rows of an anchored open query.
fn observable_digest(snap: &topodb::Snapshot, query: &PreparedQuery) -> String {
    format!(
        "epoch={} names={:?} matrix={:?} rows={:?}",
        snap.epoch(),
        snap.names(),
        snap.relation_matrix(),
        snap.evaluate(query).expect("anchored query evaluates"),
    )
}

#[test]
fn randomized_interleaved_schedules_match_legacy_oracle_exactly() {
    let query = PreparedQuery::compile("overlap(ext(x), C000_R000)").expect("query compiles");
    for seed in 0..4u64 {
        let chain = chain_db(900 + seed);
        let legacy = legacy_db(900 + seed);
        assert!(chain.epoch_chain_enabled() && !legacy.epoch_chain_enabled());
        let mut rng = StdRng::seed_from_u64(0xec0c + seed);
        let mut held: Vec<(topodb::Snapshot, topodb::Snapshot, String)> = Vec::new();
        for step in 0..30 {
            match rng.gen_range(0..10u32) {
                // Batched commit: 1–3 operations over random clusters, the
                // identical batch applied to both databases.
                0..=4 => {
                    let mut chain_txn = chain.begin_shared();
                    let mut legacy_txn = legacy.begin_shared();
                    for _ in 0..rng.gen_range(1..=3) {
                        let cluster = rng.gen_range(0..CLUSTERS);
                        if rng.gen_bool(0.3) {
                            let name = format!("X{:03}", rng.gen_range(0..12));
                            chain_txn.remove(name.clone());
                            legacy_txn.remove(name);
                        } else {
                            let name = format!("X{:03}", rng.gen_range(0..12));
                            let region = cluster_region(&mut rng, cluster);
                            chain_txn.insert(name.clone(), region.clone());
                            legacy_txn.insert(name, region);
                        }
                    }
                    let c = chain_txn.commit();
                    let l = legacy_txn.commit();
                    assert_eq!(c, l, "commit summaries diverged at step {step} (seed {seed})");
                }
                // Read + compare everything observable.
                5..=8 => {
                    let cs = chain.snapshot();
                    let ls = legacy.snapshot();
                    assert_eq!(
                        observable_digest(&cs, &query),
                        observable_digest(&ls, &query),
                        "observable state diverged at step {step} (seed {seed})"
                    );
                    assert_eq!(chain.update_epoch(), legacy.update_epoch());
                }
                // Hold a snapshot pair for later: earlier epochs must keep
                // answering identically on both backends.
                _ => {
                    let cs = chain.snapshot();
                    let ls = legacy.snapshot();
                    let digest = observable_digest(&cs, &query);
                    held.push((cs, ls, digest));
                }
            }
        }
        for (cs, ls, digest) in &held {
            assert_eq!(&observable_digest(cs, &query), digest, "held chain snapshot drifted");
            assert_eq!(&observable_digest(ls, &query), digest, "held legacy snapshot drifted");
        }
    }
}

/// A pseudo-random rectangle inside cluster `c`'s area.
fn cluster_region(rng: &mut StdRng, c: usize) -> Region {
    datagen::cluster_rect(rng, c, CLUSTERS)
}

#[test]
fn concurrent_readers_and_writers_stress() {
    let db = Arc::new(chain_db(7777));
    // Warm the root epoch so reader assertions start from a built head.
    db.snapshot();
    let writers = 3usize;
    let commits_per_writer = 12usize;
    let stop = Arc::new(AtomicBool::new(false));
    let max_epoch_seen = Arc::new(AtomicU64::new(0));

    std::thread::scope(|scope| {
        // N readers: snapshots must be internally consistent and epochs
        // monotone per reader.
        for _ in 0..4 {
            let db = Arc::clone(&db);
            let stop = Arc::clone(&stop);
            let max_epoch_seen = Arc::clone(&max_epoch_seen);
            scope.spawn(move || {
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let snap = db.snapshot();
                    assert!(
                        snap.epoch() >= last_epoch,
                        "epochs went backwards: {} after {last_epoch}",
                        snap.epoch()
                    );
                    last_epoch = snap.epoch();
                    max_epoch_seen.fetch_max(last_epoch, Ordering::Relaxed);
                    // A published epoch is fully built: its matrix row count
                    // must match its name count.
                    let names = snap.names();
                    let matrix = snap.relation_matrix();
                    assert_eq!(matrix.len(), names.len() * names.len().saturating_sub(1) / 2);
                }
            });
        }
        // M writers: writer w owns names W{w}_*; writers 0 and 1 target
        // disjoint clusters, writer 2 sprays across all clusters so some
        // commits overlap components touched by the others.
        let handles: Vec<_> = (0..writers)
            .map(|w| {
                let db = Arc::clone(&db);
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(0xbeef + w as u64);
                    for i in 0..commits_per_writer {
                        let cluster =
                            if w < 2 { w } else { rng.gen_range(0..CLUSTERS) };
                        let mut txn = db.begin_shared();
                        txn.insert(format!("W{w}_N{i:03}"), cluster_region(&mut rng, cluster));
                        if i >= 4 {
                            txn.remove(format!("W{w}_N{:03}", i - 4));
                        }
                        let summary = txn.commit();
                        assert!(
                            !summary.changed.is_empty(),
                            "every stress batch inserts a fresh name"
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("writer thread");
        }
        stop.store(true, Ordering::Relaxed);
    });

    // Every effective commit bumped the epoch exactly once, in a total
    // order.
    assert_eq!(db.update_epoch(), (writers * commits_per_writer) as u64);
    assert!(max_epoch_seen.load(Ordering::Relaxed) <= db.update_epoch());

    // Writers own disjoint name spaces and each applied a deterministic
    // final sub-state, so the final instance is interleaving-independent:
    // the legacy oracle applying the same final sub-states must observe a
    // byte-identical world.
    let oracle = legacy_db(7777);
    {
        let mut txn = oracle.begin_shared();
        for w in 0..writers {
            let mut rng = StdRng::seed_from_u64(0xbeef + w as u64);
            for i in 0..commits_per_writer {
                let cluster = if w < 2 { w } else { rng.gen_range(0..CLUSTERS) };
                let region = cluster_region(&mut rng, cluster);
                txn.insert(format!("W{w}_N{i:03}"), region);
                if i >= 4 {
                    txn.remove(format!("W{w}_N{:03}", i - 4));
                }
            }
        }
        txn.commit();
    }
    let query = PreparedQuery::compile("overlap(ext(x), C000_R000)").expect("query compiles");
    let chain_final = db.snapshot();
    let oracle_final = oracle.snapshot();
    assert_eq!(chain_final.names(), oracle_final.names());
    assert_eq!(chain_final.relation_matrix(), oracle_final.relation_matrix());
    assert_eq!(
        format!("{:?}", chain_final.evaluate(&query).unwrap()),
        format!("{:?}", oracle_final.evaluate(&query).unwrap()),
    );
    eprintln!(
        "stress: {} epochs, {} publish conflicts, {} component re-sweeps",
        db.update_epoch(),
        db.publish_conflict_count(),
        db.component_rebuild_count()
    );
}

#[test]
fn commits_reuse_untouched_components_pointer_identically() {
    let db = chain_db(31415);
    let before = db.component_complexes();
    assert!(before.len() >= CLUSTERS, "clustered map yields at least one component per cluster");

    // A commit confined to cluster 0 must republish every component not
    // containing a cluster-0 region pointer-identically.
    let mut rng = StdRng::seed_from_u64(99);
    let mut txn = db.begin_shared();
    txn.insert("Z000", cluster_region(&mut rng, 0));
    txn.commit();
    let after = db.component_complexes();
    for (key, component) in &before {
        if key.iter().any(|n| n.starts_with("C000")) {
            continue; // cluster 0 may legitimately re-sweep
        }
        let reused = after
            .iter()
            .any(|(k, c)| k == key && Arc::ptr_eq(c, component));
        assert!(reused, "untouched component {key:?} was not reused pointer-identically");
    }

    // The same guarantee under *concurrent* disjoint commits: components of
    // clusters 2..CLUSTERS are untouched by writers hitting clusters 0/1.
    let base = db.component_complexes();
    let db = Arc::new(db);
    std::thread::scope(|scope| {
        for w in 0..2usize {
            let db = Arc::clone(&db);
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + w as u64);
                for i in 0..6 {
                    let mut txn = db.begin_shared();
                    txn.insert(format!("Y{w}_{i:02}"), cluster_region(&mut rng, w));
                    txn.commit();
                }
            });
        }
    });
    let final_components = db.component_complexes();
    for (key, component) in &base {
        if key.iter().any(|n| n.starts_with("C000") || n.starts_with("C001") || n.starts_with('Z'))
        {
            continue;
        }
        let reused = final_components
            .iter()
            .any(|(k, c)| k == key && Arc::ptr_eq(c, component));
        assert!(
            reused,
            "component {key:?} untouched by either concurrent writer was re-swept"
        );
    }
}

#[test]
fn epoch_chain_toggle_is_observable_and_both_serve_identical_results() {
    let chain = chain_db(5);
    let legacy = legacy_db(5);
    assert!(chain.epoch_chain_enabled());
    assert!(!legacy.epoch_chain_enabled());
    assert_eq!(chain.snapshot().relation_matrix(), legacy.snapshot().relation_matrix());
    // The env default is merely a default: explicit construction wins, and
    // both backends expose the same epoch accounting.
    assert_eq!(chain.update_epoch(), 0);
    assert_eq!(legacy.update_epoch(), 0);
}
