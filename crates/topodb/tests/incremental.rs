//! Differential tests for incremental arrangement maintenance: after every
//! step of a randomized insert/remove schedule on a clustered instance, the
//! incrementally maintained complex and invariant of a long-lived
//! [`TopoDatabase`] must be equal (up to cell re-indexing) to a from-scratch
//! rebuild of the same instance — checked via cell counts, label multisets
//! and [`invariant::isomorphic`].
//!
//! A second suite pins the locality guarantee itself: on a multi-cluster
//! map, an update touching one cluster re-sweeps only the affected
//! component(s) while every untouched `Arc<ComponentComplex>` is reused
//! pointer-identically.

use datagen::cluster_rect;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use topodb::arrangement::Label;
use topodb::spatial_core::prelude::*;
use topodb::TopoDatabase;

/// Sorted label multisets of all cells — a re-indexing-invariant summary.
fn label_multisets(db: &TopoDatabase) -> (Vec<Label>, Vec<Label>, Vec<Label>) {
    let c = db.cell_complex();
    let mut v: Vec<Label> = c.vertex_ids().map(|x| c.vertex(x).label.clone()).collect();
    let mut e: Vec<Label> = c.edge_ids().map(|x| c.edge(x).label.clone()).collect();
    let mut f: Vec<Label> = c.face_ids().map(|x| c.face(x).label.clone()).collect();
    v.sort();
    e.sort();
    f.sort();
    (v, e, f)
}

fn assert_equals_fresh_rebuild(db: &TopoDatabase, context: &str) {
    let fresh = TopoDatabase::from_instance((*db.instance()).clone());
    let (c, fc) = (db.cell_complex(), fresh.cell_complex());
    assert_eq!(c.vertex_count(), fc.vertex_count(), "vertex count diverged {context}");
    assert_eq!(c.edge_count(), fc.edge_count(), "edge count diverged {context}");
    assert_eq!(c.face_count(), fc.face_count(), "face count diverged {context}");
    assert!(c.euler_formula_holds(), "euler relation broken {context}");
    assert_eq!(
        label_multisets(db),
        label_multisets(&fresh),
        "cell label multisets diverged {context}"
    );
    assert!(
        invariant::isomorphic(&db.invariant(), &fresh.invariant()),
        "invariant not isomorphic to from-scratch rebuild {context}"
    );
}

#[test]
fn randomized_update_schedules_match_from_scratch_rebuilds() {
    // 30 schedules x 5 steps = 150 update steps, each followed by a full
    // differential comparison against a from-scratch rebuild.
    let clusters = 4usize;
    for schedule in 0..30u64 {
        let mut rng = StdRng::seed_from_u64(9000 + schedule);
        let mut db = TopoDatabase::from_instance(datagen::clustered_map(clusters, 3, schedule));
        let mut extra = 0usize;
        for step in 0..5 {
            // Mix of operations: insert a fresh region, replace an existing
            // one, or remove one — always targeting a random cluster.
            let cluster = rng.gen_range(0..clusters);
            let op = rng.gen_range(0..3u32);
            let context = format!("(schedule {schedule}, step {step}, op {op})");
            match op {
                0 => {
                    let region = cluster_rect(&mut rng, cluster, clusters);
                    db.insert(format!("X{extra:03}"), region);
                    extra += 1;
                }
                1 => {
                    let names = db.names();
                    let name = names[rng.gen_range(0..names.len())].clone();
                    let region = cluster_rect(&mut rng, cluster, clusters);
                    db.insert(name, region);
                }
                _ => {
                    let names = db.names();
                    if names.len() > 1 {
                        let name = names[rng.gen_range(0..names.len())].clone();
                        assert!(db.remove(&name).is_some(), "remove failed {context}");
                    }
                }
            }
            assert_equals_fresh_rebuild(&db, &context);
        }
    }
}

#[test]
fn update_to_one_cluster_reuses_every_other_component() {
    // The acceptance scenario: a 16-cluster map; an insert touching one
    // cluster followed by a read re-sweeps only the affected component(s)
    // while all untouched components are returned pointer-identically.
    let clusters = 16usize;
    let mut db = TopoDatabase::from_instance(datagen::clustered_map(clusters, 4, 42));
    let before_components = db.component_complexes();
    assert!(
        before_components.len() >= clusters,
        "each cluster contributes at least one component"
    );
    let builds_before = db.complex_build_count();
    let rebuilds_before = db.component_rebuild_count();

    // Insert a rectangle covering most of cluster 0's area.
    let (ox, oy) = datagen::cluster_origin(0, clusters);
    let span = datagen::CLUSTER_SPAN;
    db.insert("Update", Region::rect_from_ints(ox + 2, oy + 2, ox + span - 4, oy + span - 4));
    let _ = db.relation_matrix();

    assert_eq!(db.complex_build_count(), builds_before + 1, "one re-assembly");
    let rebuilt = db.component_rebuild_count() - rebuilds_before;
    assert!(
        (1..=2).contains(&rebuilt),
        "only the affected component(s) may be re-swept, got {rebuilt}"
    );

    // Every component not involving cluster 0 must be the same allocation.
    let after: std::collections::BTreeMap<Vec<String>, Arc<topodb::arrangement::ComponentComplex>> =
        db.component_complexes().into_iter().collect();
    let mut untouched = 0usize;
    for (key, arc_before) in &before_components {
        if key.iter().any(|n| n.starts_with("C000_")) {
            continue; // cluster 0: allowed to be rebuilt
        }
        let arc_after = after.get(key).unwrap_or_else(|| {
            panic!("component {key:?} disappeared though the update did not touch it")
        });
        assert!(
            Arc::ptr_eq(arc_before, arc_after),
            "component {key:?} was rebuilt though the update did not touch it"
        );
        untouched += 1;
    }
    assert!(untouched >= clusters - 1, "15 of 16 clusters stay cached");

    // The complex still matches a from-scratch rebuild after the update.
    assert_equals_fresh_rebuild(&db, "(acceptance scenario)");
}

#[test]
fn removal_restores_pointer_reuse_and_correctness() {
    let mut db = TopoDatabase::from_instance(datagen::clustered_map(9, 3, 7));
    let _ = db.cell_complex();
    let rebuilds_before = db.component_rebuild_count();

    // Remove one region of cluster 4, read, and compare.
    let victim = db
        .names()
        .iter()
        .find(|n| n.starts_with("C004_"))
        .expect("cluster 4 has regions")
        .clone();
    assert!(db.remove(&victim).is_some());
    assert_equals_fresh_rebuild(&db, "(after removal)");
    let rebuilt = db.component_rebuild_count() - rebuilds_before;
    assert!(rebuilt <= 3, "a removal re-sweeps at most the split cluster, got {rebuilt}");
    assert_eq!(db.update_epoch(), 1);
}

#[test]
fn epoch_counter_tracks_updates() {
    let mut db = TopoDatabase::new();
    assert_eq!(db.update_epoch(), 0);
    db.insert("A", Region::rect_from_ints(0, 0, 4, 4));
    db.insert("B", Region::rect_from_ints(10, 0, 14, 4));
    assert_eq!(db.update_epoch(), 2);
    db.remove("A");
    assert_eq!(db.update_epoch(), 3);
    // Reads never advance the epoch.
    let _ = db.cell_complex();
    let _ = db.invariant();
    assert_eq!(db.update_epoch(), 3);
}
