//! Degraded-mode and retry-policy edge cases, driven through the
//! fault-injecting [`wal::SimFs`] backend: transient faults are absorbed
//! by bounded backoff, unsurvivable faults flip the database to read-only
//! **exactly once**, commits then fail fast with the original root cause,
//! and reads keep serving throughout.

use spatial_core::instance::SpatialInstance;
use spatial_core::region::Region;
use std::sync::{Arc, Mutex};
use std::time::Duration;
use topodb::{Clock, RetryPolicy, StorageOptions, TopoDatabase, TopoDbError};
use wal::{Fault, FaultPlan, SimFs};

const DIR: &str = "/db";

/// A [`Clock`] that records every requested backoff instead of sleeping,
/// so retry policy is assertable without wall-clock time.
#[derive(Debug, Default)]
struct RecordingClock(Mutex<Vec<Duration>>);

impl Clock for RecordingClock {
    fn sleep(&self, d: Duration) {
        self.0.lock().unwrap().push(d);
    }
}

fn options(sim: &SimFs, retry: RetryPolicy, clock: &Arc<RecordingClock>) -> StorageOptions {
    StorageOptions::default()
        .with_vfs(Arc::new(sim.clone()))
        .with_retry(retry)
        .with_clock(Arc::clone(clock) as Arc<dyn Clock>)
}

/// A database on a fresh SimFs, with a recording no-sleep clock.
fn sim_db(retry: RetryPolicy) -> (TopoDatabase, SimFs, Arc<RecordingClock>) {
    let sim = SimFs::new();
    let clock = Arc::new(RecordingClock::default());
    let db = TopoDatabase::create_with_storage(
        DIR,
        SpatialInstance::new(),
        options(&sim, retry, &clock),
    )
    .expect("create on a healthy SimFs");
    (db, sim, clock)
}

fn commit_rect(db: &TopoDatabase, name: &str, at: i64) -> Result<(), TopoDbError> {
    let mut txn = db.begin_shared();
    txn.insert(name, Region::rect_from_ints(at, at, at + 4, at + 4));
    txn.try_commit().map(|_| ())
}

#[test]
fn health_reports_healthy_then_degraded_with_the_root_cause() {
    let (db, sim, _clock) = sim_db(RetryPolicy::default());
    commit_rect(&db, "A", 0).expect("healthy commit");

    let h = db.health();
    assert_eq!(h.backend, if db.epoch_chain_enabled() { "epoch-chain" } else { "legacy-rwlock" });
    assert!(h.durable);
    assert_eq!(h.epoch, 1);
    assert_eq!(h.degraded, None, "healthy: no degradation cause");
    assert_eq!(h.degrade_events, 0);
    assert_eq!(h.wal_head_epoch, Some(1));
    assert_eq!(h.last_checkpoint_epoch, Some(0));

    // ENOSPC on the next append: fatal, not retried.
    sim.set_plan(FaultPlan::none().fail_writes(1, Fault::NoSpace));
    let err = commit_rect(&db, "B", 10).expect_err("ENOSPC must fail the commit");
    assert!(matches!(err, TopoDbError::Degraded(_)), "typed degradation, got {err:?}");

    let h = db.health();
    let cause = h.degraded.expect("health reports the degradation");
    assert!(cause.to_string().contains("no space"), "root cause is the ENOSPC: {cause}");
    assert_eq!(h.degrade_events, 1);
    assert_eq!(h.epoch, 1, "the failed commit published nothing");
    assert_eq!(h.transient_retries, 0, "fatal faults are never retried");
}

#[test]
fn transient_fault_on_the_final_allowed_attempt_still_succeeds() {
    // Attempt budget 3: two EINTRs burn attempts 1 and 2, the third (last
    // allowed) succeeds. The backoff between them doubles.
    let (db, sim, clock) = sim_db(
        RetryPolicy::default().with_max_attempts(3).with_backoff(Duration::from_millis(1)),
    );
    sim.set_plan(FaultPlan::none().fail_writes(2, Fault::Transient));

    commit_rect(&db, "A", 0).expect("two transients within a 3-attempt budget must succeed");
    assert_eq!(db.update_epoch(), 1);

    let h = db.health();
    assert_eq!(h.transient_retries, 2);
    assert_eq!(h.retries_exhausted, 0);
    assert_eq!(h.degraded, None, "absorbed transients never degrade");
    let sleeps = clock.0.lock().unwrap().clone();
    assert_eq!(
        sleeps,
        vec![Duration::from_millis(1), Duration::from_millis(2)],
        "one backoff per retry, doubling"
    );

    // The log is consistent after the torn/retried appends: reopen on the
    // surviving bytes and find the committed epoch.
    std::mem::forget(db);
    sim.power_cycle();
    let reopened = TopoDatabase::open_with_storage(
        DIR,
        StorageOptions::default().with_vfs(Arc::new(sim.clone())),
    )
    .expect("reopen after retried commit");
    assert_eq!(reopened.update_epoch(), 1, "the retried commit is durable");
}

#[test]
fn retry_exhaustion_degrades_exactly_once_and_the_cause_is_stable() {
    let (db, sim, clock) = sim_db(RetryPolicy::default().with_max_attempts(2));
    commit_rect(&db, "A", 0).expect("healthy commit");
    sim.set_plan(FaultPlan::none().fail_writes(10, Fault::Transient));

    let err = commit_rect(&db, "B", 10).expect_err("budget of 2 cannot absorb 10 transients");
    let TopoDbError::Degraded(first_cause) = err else { panic!("expected Degraded, got {err:?}") };
    assert_eq!(clock.0.lock().unwrap().len(), 1, "exactly one backoff before exhaustion");

    // Subsequent commits fail fast — no further attempts hit storage, no
    // further degrade events, and the root cause never changes.
    let points_after = sim.io_points();
    for i in 0..3u64 {
        let err = commit_rect(&db, "C", 20 + i as i64).expect_err("degraded: commits rejected");
        let TopoDbError::Degraded(cause) = err else { panic!("expected Degraded, got {err:?}") };
        assert_eq!(cause, first_cause, "the root cause is the first failure, forever");
    }
    assert_eq!(sim.io_points(), points_after, "fail-fast rejections never touch storage");

    let h = db.health();
    assert_eq!(h.degrade_events, 1, "degradation happened exactly once");
    assert_eq!(h.retries_exhausted, 1);
    assert_eq!(h.transient_retries, 1);
    assert_eq!(h.degraded_commit_rejections, 3);
    assert_eq!(h.degraded, Some(first_cause));
}

#[test]
fn reads_keep_serving_while_commits_fail_typed() {
    // The forced-fatal acceptance scenario: after degradation, every
    // commit fails fast with the typed error while snapshots, queries and
    // relation reads keep serving the last published epoch.
    let (db, sim, _clock) = sim_db(RetryPolicy::default());
    commit_rect(&db, "A", 0).expect("commit A");
    commit_rect(&db, "B", 2).expect("commit B overlapping A");
    let snapshot_before = db.snapshot();

    sim.set_plan(FaultPlan::none().fail_writes(1, Fault::NoSpace));
    let err = commit_rect(&db, "C", 50).expect_err("fatal fault degrades");
    assert!(matches!(err, TopoDbError::Degraded(_)));

    // Reads on a degraded database: same epoch, same answers, new
    // snapshots still acquirable.
    assert_eq!(db.update_epoch(), 2, "head unchanged by the failed commit");
    let snap = db.snapshot();
    assert_eq!(snap.epoch(), snapshot_before.epoch());
    assert_eq!(snap.relation("A", "B").unwrap().name(), "overlap");
    assert_eq!(db.query("overlap(A, B)"), Ok(true));
    assert!(db.query("disjoint(A, C)").is_err(), "C was never published");
    assert!(db.summary().contains("2 region(s)"));

    // Checkpoints are writes too: rejected typed, not panicking.
    let err = db.checkpoint().expect_err("checkpoint on a degraded database");
    assert!(matches!(err, TopoDbError::Degraded(_)), "got {err:?}");
}

#[test]
fn concurrent_committers_all_observe_degraded_without_deadlock() {
    let (db, sim, _clock) = sim_db(RetryPolicy::default());
    commit_rect(&db, "Base", 0).expect("healthy commit");
    sim.set_plan(FaultPlan::none().fail_writes(64, Fault::NoSpace));

    // Several threads race their commits into the fault. Whoever reaches
    // storage first degrades the database; everyone — including commits
    // that only start after degradation — gets the typed error, and the
    // publish lock is released on every path (no deadlock, bounded time).
    let results: Vec<Result<(), TopoDbError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let db = &db;
                s.spawn(move || commit_rect(db, "W", 10 + 10 * i))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("no panics")).collect()
    });
    for (i, r) in results.iter().enumerate() {
        let Err(TopoDbError::Degraded(_)) = r else {
            panic!("committer {i} must observe Degraded, got {r:?}");
        };
    }

    let h = db.health();
    assert_eq!(h.degrade_events, 1, "one degradation for the whole stampede");
    assert_eq!(h.epoch, 1, "nothing published");
    assert_eq!(db.snapshot().epoch(), 1, "reads still serve after the stampede");

    // A committer arriving later is also rejected, typed.
    let err = commit_rect(&db, "Late", 99).expect_err("still degraded");
    assert!(matches!(err, TopoDbError::Degraded(_)));
}

#[test]
fn failed_maintenance_after_an_acked_append_keeps_the_commit_and_degrades() {
    // Checkpoint cadence of 2: the second commit's append succeeds (and is
    // acked), then the post-append checkpoint write hits ENOSPC. The
    // commit must stand — its record is durable — while the database
    // degrades proactively so the *next* commit fails typed.
    let sim = SimFs::new();
    let clock = Arc::new(RecordingClock::default());
    let mut opts = options(&sim, RetryPolicy::default(), &clock);
    opts.wal = opts.wal.with_checkpoint_every(2);
    let db = TopoDatabase::create_with_storage(DIR, SpatialInstance::new(), opts)
        .expect("create on a healthy SimFs");

    commit_rect(&db, "A", 0).expect("commit 1 (no checkpoint yet)");
    // Commit 2 in order: append write, per-commit fsync, checkpoint tmp
    // write. Target the checkpoint write by io point.
    sim.set_plan(FaultPlan::none().at(sim.io_points() + 2, Fault::NoSpace));
    commit_rect(&db, "B", 10).expect("the append was acked; failed housekeeping keeps the commit");
    assert_eq!(db.update_epoch(), 2, "both commits published");

    let h = db.health();
    assert_eq!(h.maintenance_errors, 1);
    assert!(h.degraded.is_some(), "fatal maintenance degrades proactively");
    let err = commit_rect(&db, "C", 20).expect_err("next commit is rejected");
    assert!(matches!(err, TopoDbError::Degraded(_)));

    // Both acked commits survive a crash + reopen.
    std::mem::forget(db);
    sim.power_cycle();
    let reopened = TopoDatabase::open_with_storage(
        DIR,
        StorageOptions::default().with_vfs(Arc::new(sim.clone())),
    )
    .expect("reopen");
    assert_eq!(reopened.update_epoch(), 2, "no acked commit lost");
}

#[test]
fn dir_sync_downgrades_surface_in_health() {
    let (db, sim, _clock) = sim_db(RetryPolicy::default());
    commit_rect(&db, "A", 0).expect("healthy commit");

    // The checkpoint is published by rename; a directory-fsync failure
    // after it downgrades to a counted warning instead of failing the
    // checkpoint (see the wal crate's failure model).
    sim.set_plan(FaultPlan::none().fail_dir_syncs(8, Fault::SyncFail));
    db.checkpoint().expect("checkpoint succeeds despite the dir-sync failure");

    let h = db.health();
    assert_eq!(h.dir_sync_downgrades, 1);
    assert_eq!(h.degraded, None, "a downgrade is not a degradation");
    assert_eq!(h.last_checkpoint_epoch, Some(1), "the checkpoint took effect");
    commit_rect(&db, "B", 10).expect("the database stays healthy");
}
