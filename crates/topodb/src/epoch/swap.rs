//! A std-only atomic `Arc` slot with generation-counted reclamation — the
//! publication point of the epoch chain.
//!
//! [`ArcSwap`] holds one `Arc<T>` behind an [`AtomicPtr`]. [`ArcSwap::load`]
//! is lock-free and, outside the instant of a concurrent publish, wait-free:
//! announce a pin, load the pointer, bump the refcount, unpin — no mutex,
//! no writer can block a reader. [`ArcSwap::compare_exchange`] publishes a
//! replacement and *retires* the old value instead of dropping it, because
//! a reader may sit between its pointer load and its refcount bump with no
//! refcount of its own yet.
//!
//! **Reclamation invariant.** Readers announce themselves in one of two pin
//! slots, indexed by the parity of a generation counter; writers retire
//! replaced values into a limbo list stamped with the current generation,
//! and flip the generation only when the *incoming* parity's pin slot reads
//! zero. A value retired at generation `g` is freed once the generation
//! reaches `g + 2`: the two flips in between observed both pin slots empty
//! at instants *after* the retirement, and every reader that loaded the
//! retired pointer pinned one of the two slots *before* the swap (its pin
//! precedes its pointer load, which returned the old value, so it precedes
//! the writer's successful compare-exchange in the `SeqCst` total order).
//! Observing that reader's slot at zero therefore proves the reader has
//! unpinned — i.e. already completed its refcount bump. Freeing the limbo
//! `Arc` then merely decrements a count the reader's own clone keeps
//! positive.
//!
//! Readers validate the generation after pinning and re-pin if it moved
//! (the parity they announced in might otherwise be the one a writer is
//! about to declare drained); the retry loop runs only when a writer
//! completes a whole publish inside the reader's four-instruction window,
//! so a reader performs a handful of atomic operations and no allocation
//! beyond the `Arc` bump. If a pinned reader stalls, generations stop
//! advancing and limbo values are merely *deferred*, never freed unsafely.
//!
//! This is the only unsafe code in the crate (raw-pointer round-trips
//! through [`Arc::into_raw`] / [`Arc::from_raw`] /
//! [`Arc::increment_strong_count`]); the rest of `topodb` denies
//! `unsafe_code`.

#![allow(unsafe_code)]

use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering::SeqCst};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// An atomically replaceable `Arc<T>`: lock-free reads, compare-exchange
/// publication, deferred reclamation (see the module docs).
pub(crate) struct ArcSwap<T> {
    /// The published value, as a raw pointer owning one strong count.
    head: AtomicPtr<T>,
    /// Reclamation generation; its parity selects the active pin slot.
    generation: AtomicU64,
    /// Reader pin counts, one per generation parity.
    pins: [AtomicU64; 2],
    /// Replaced values awaiting reclamation, stamped with the generation at
    /// which they were retired. Writers only.
    limbo: Mutex<Vec<(u64, Arc<T>)>>,
}

impl<T> ArcSwap<T> {
    /// A slot holding `value`.
    pub fn new(value: Arc<T>) -> Self {
        ArcSwap {
            head: AtomicPtr::new(Arc::into_raw(value).cast_mut()),
            generation: AtomicU64::new(0),
            pins: [AtomicU64::new(0), AtomicU64::new(0)],
            limbo: Mutex::new(Vec::new()),
        }
    }

    /// The current value — an atomic load plus an `Arc` refcount bump,
    /// never a lock.
    pub fn load(&self) -> Arc<T> {
        loop {
            let generation = self.generation.load(SeqCst);
            let slot = (generation & 1) as usize;
            self.pins[slot].fetch_add(1, SeqCst);
            if self.generation.load(SeqCst) != generation {
                // A publish completed inside the window: our pin may be in
                // the parity a writer is about to treat as drained-then-
                // refilled. Unpin and re-announce under the new generation.
                self.pins[slot].fetch_sub(1, SeqCst);
                continue;
            }
            let ptr = self.head.load(SeqCst);
            // SAFETY: `ptr` came from `Arc::into_raw` (in `new` or
            // `compare_exchange`) and its strong count cannot reach zero
            // here: a writer that replaces it moves the strong count into
            // the limbo list and frees it only after observing this pin
            // slot at zero at a generation flip after the replacement —
            // and our pin was announced before the pointer load that
            // returned `ptr`, hence before any such replacement in the
            // `SeqCst` total order.
            unsafe { Arc::increment_strong_count(ptr) };
            // SAFETY: the strong count was just raised on a live value, so
            // materializing one owning handle from the raw pointer is
            // sound.
            let value = unsafe { Arc::from_raw(ptr) };
            self.pins[slot].fetch_sub(1, SeqCst);
            return value;
        }
    }

    /// Publish `new` if the slot still holds `expected` (pointer identity).
    /// On success the replaced value is retired into limbo; on failure
    /// `new` is dropped (the caller keeps its own handles to anything it
    /// needs back) and `Err` is returned.
    pub fn compare_exchange(&self, expected: &Arc<T>, new: Arc<T>) -> Result<(), ()> {
        let mut limbo = lock(&self.limbo);
        let expected_ptr = Arc::as_ptr(expected).cast_mut();
        let new_ptr = Arc::into_raw(new).cast_mut();
        match self.head.compare_exchange(expected_ptr, new_ptr, SeqCst, SeqCst) {
            Ok(old) => {
                // SAFETY: `old` held one strong count on behalf of the
                // slot (it was published via `Arc::into_raw`) and has just
                // been unlinked; reconstructing the `Arc` moves that count
                // into the limbo entry. `expected` being a live `Arc` to
                // the same allocation rules out ABA: the allocation cannot
                // have been freed and reused while the caller holds it.
                let retired = unsafe { Arc::from_raw(old.cast_const()) };
                let generation = self.generation.load(SeqCst);
                limbo.push((generation, retired));
                self.collect(&mut limbo);
                Ok(())
            }
            Err(_) => {
                // SAFETY: `new_ptr` came from `Arc::into_raw` above and was
                // never published — reclaim the count we took.
                drop(unsafe { Arc::from_raw(new_ptr.cast_const()) });
                Err(())
            }
        }
    }

    /// Advance the generation (at most twice) past drained pin slots and
    /// free every limbo entry retired two or more generations ago. Runs
    /// under the limbo lock.
    fn collect(&self, limbo: &mut Vec<(u64, Arc<T>)>) {
        for _ in 0..2 {
            let generation = self.generation.load(SeqCst);
            let incoming = ((generation + 1) & 1) as usize;
            if self.pins[incoming].load(SeqCst) == 0 {
                self.generation.store(generation + 1, SeqCst);
            } else {
                break;
            }
        }
        let generation = self.generation.load(SeqCst);
        limbo.retain(|(retired_at, _)| retired_at + 2 > generation);
    }
}

impl<T> Drop for ArcSwap<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access — no reader can be pinned and no writer
        // in flight. The head holds exactly the one strong count its
        // publication transferred in; limbo entries drop with the Vec.
        drop(unsafe { Arc::from_raw(self.head.get_mut().cast_const()) });
    }
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // Limbo pushes are complete-entry appends; a panic cannot tear them.
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_returns_published_value() {
        let slot = ArcSwap::new(Arc::new(7u64));
        assert_eq!(*slot.load(), 7);
        let base = slot.load();
        assert!(slot.compare_exchange(&base, Arc::new(8)).is_ok());
        assert_eq!(*slot.load(), 8);
        // Stale expected pointer: the exchange must fail and leave the slot
        // untouched.
        assert!(slot.compare_exchange(&base, Arc::new(9)).is_err());
        assert_eq!(*slot.load(), 8);
    }

    #[test]
    fn retired_values_survive_while_held_and_get_collected() {
        let slot = ArcSwap::new(Arc::new(0u64));
        let v0 = slot.load();
        for i in 1..100u64 {
            let cur = slot.load();
            assert!(slot.compare_exchange(&cur, Arc::new(i)).is_ok());
        }
        // The original value is still fully usable through our own handle…
        assert_eq!(*v0, 0);
        // …and with no reader pinned, limbo must stay bounded (every entry
        // two generations old was freed).
        assert!(lock(&slot.limbo).len() <= 2, "limbo drained to the 2-generation window");
    }

    #[test]
    fn concurrent_load_and_publish_never_tear() {
        let slot = Arc::new(ArcSwap::new(Arc::new(vec![0u64; 64])));
        let stop = Arc::new(AtomicBool::new(false));
        std::thread::scope(|scope| {
            for _ in 0..3 {
                let slot = Arc::clone(&slot);
                let stop = Arc::clone(&stop);
                scope.spawn(move || {
                    while !stop.load(SeqCst) {
                        let v = slot.load();
                        // Every published vector is constant: observing a
                        // mixed one would mean a torn/freed read.
                        assert!(v.windows(2).all(|w| w[0] == w[1]));
                    }
                });
            }
            for round in 1..=200u64 {
                let cur = slot.load();
                let _ = slot.compare_exchange(&cur, Arc::new(vec![round; 64]));
            }
            stop.store(true, SeqCst);
        });
        assert!(slot.load().iter().all(|&x| x == 200));
    }
}
