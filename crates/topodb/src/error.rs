//! Error type of the facade.

use std::fmt;

/// Errors surfaced by the facade.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TopoDbError {
    /// A region name was not found.
    UnknownRegion(String),
    /// The query text could not be parsed.
    Parse {
        /// Explanation of the failure, from `query::parser`.
        message: String,
        /// Byte offset in the query text at which the failure occurred
        /// (`usize::MAX` when the input ended before the formula did), so
        /// callers can point at the offending token.
        position: usize,
    },
    /// Query evaluation failed.
    Eval(String),
    /// The durability layer failed: opening, recovering, checkpointing or
    /// validating a write-ahead log, or an append that the retry policy
    /// could still classify as survivable. (An append failure that is
    /// *not* survivable degrades the database and surfaces as
    /// [`TopoDbError::Degraded`] instead — see the "Durability model"
    /// notes on [`crate::TopoDatabase`].)
    Durability(wal::WalError),
    /// The database is in **read-only degraded mode**: a fatal storage
    /// failure (or retry exhaustion on a transient one) was encountered,
    /// commits are rejected fast, and snapshots/queries keep serving the
    /// last published epoch. Carries the root cause that triggered
    /// degradation.
    Degraded(wal::WalError),
}

/// The facade's taxonomy of write-ahead-log failures — what the retry
/// policy keys on. See the "Durability model" notes on
/// [`crate::TopoDatabase`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ErrorClass {
    /// `EINTR`-style backend hiccups: the operation did not take effect
    /// and is retried with backoff, up to the configured attempt budget.
    Transient,
    /// `ENOSPC`, device failures, failed fsyncs, misuse errors: retrying
    /// cannot help. The database degrades to read-only.
    Fatal,
    /// Bytes (or an append ordering) that no crash of our own writer can
    /// produce. Never retried; the database degrades to read-only and the
    /// root cause names the file and offset.
    Corrupting,
}

impl ErrorClass {
    /// Classify a [`wal::WalError`].
    pub fn of(err: &wal::WalError) -> ErrorClass {
        match err {
            e if e.is_transient() => ErrorClass::Transient,
            wal::WalError::Corrupt { .. } => ErrorClass::Corrupting,
            _ => ErrorClass::Fatal,
        }
    }
}

impl TopoDbError {
    /// For parse errors, the byte offset of the offending token (`None` when
    /// the failure was at end of input).
    pub fn parse_position(&self) -> Option<usize> {
        match self {
            TopoDbError::Parse { position, .. } if *position != usize::MAX => Some(*position),
            _ => None,
        }
    }
}

impl fmt::Display for TopoDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoDbError::UnknownRegion(n) => write!(f, "unknown region `{n}`"),
            TopoDbError::Parse { message, position } => {
                if *position == usize::MAX {
                    write!(f, "query parse error at end of input: {message}")
                } else {
                    write!(f, "query parse error at byte {position}: {message}")
                }
            }
            TopoDbError::Eval(m) => write!(f, "query evaluation error: {m}"),
            TopoDbError::Durability(e) => write!(f, "durability error: {e}"),
            TopoDbError::Degraded(e) => write!(
                f,
                "database is degraded (read-only): commits are rejected, reads keep \
                 serving the last published epoch; root cause: {e}"
            ),
        }
    }
}

impl std::error::Error for TopoDbError {}

impl From<wal::WalError> for TopoDbError {
    fn from(e: wal::WalError) -> TopoDbError {
        TopoDbError::Durability(e)
    }
}

impl From<query::ParseError> for TopoDbError {
    fn from(e: query::ParseError) -> TopoDbError {
        TopoDbError::Parse { message: e.message, position: e.position }
    }
}

impl From<query::PrepareError> for TopoDbError {
    fn from(e: query::PrepareError) -> TopoDbError {
        match e {
            query::PrepareError::Parse(p) => p.into(),
            query::PrepareError::FreeRegionVariable(_) => TopoDbError::Eval(e.to_string()),
        }
    }
}

impl From<query::EvalError> for TopoDbError {
    fn from(e: query::EvalError) -> TopoDbError {
        TopoDbError::Eval(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_errors_carry_the_byte_position() {
        let err = TopoDbError::from(query::parse("overlap(A, %)").unwrap_err());
        let TopoDbError::Parse { position, .. } = &err else {
            panic!("expected a parse error, got {err:?}")
        };
        assert_eq!(*position, 11, "position of the `%`");
        assert_eq!(err.parse_position(), Some(11));
        assert!(err.to_string().contains("at byte 11"), "{err}");

        // Truncated input: the failure is at end of input.
        let err = TopoDbError::from(query::parse("overlap(A,").unwrap_err());
        assert_eq!(err.parse_position(), None);
        assert!(err.to_string().contains("at end of input"), "{err}");
    }
}
