//! Error type of the facade.

use std::fmt;

/// Errors surfaced by the facade.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TopoDbError {
    /// A region name was not found.
    UnknownRegion(String),
    /// The query text could not be parsed.
    Parse {
        /// Explanation of the failure, from `query::parser`.
        message: String,
        /// Byte offset in the query text at which the failure occurred
        /// (`usize::MAX` when the input ended before the formula did), so
        /// callers can point at the offending token.
        position: usize,
    },
    /// Query evaluation failed.
    Eval(String),
    /// The durability layer failed: opening, recovering, checkpointing or
    /// validating a write-ahead log. (A failed *append* on a live commit
    /// panics instead — see the "Durability model" notes on
    /// [`crate::TopoDatabase`].)
    Durability(wal::WalError),
}

impl TopoDbError {
    /// For parse errors, the byte offset of the offending token (`None` when
    /// the failure was at end of input).
    pub fn parse_position(&self) -> Option<usize> {
        match self {
            TopoDbError::Parse { position, .. } if *position != usize::MAX => Some(*position),
            _ => None,
        }
    }
}

impl fmt::Display for TopoDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoDbError::UnknownRegion(n) => write!(f, "unknown region `{n}`"),
            TopoDbError::Parse { message, position } => {
                if *position == usize::MAX {
                    write!(f, "query parse error at end of input: {message}")
                } else {
                    write!(f, "query parse error at byte {position}: {message}")
                }
            }
            TopoDbError::Eval(m) => write!(f, "query evaluation error: {m}"),
            TopoDbError::Durability(e) => write!(f, "durability error: {e}"),
        }
    }
}

impl std::error::Error for TopoDbError {}

impl From<wal::WalError> for TopoDbError {
    fn from(e: wal::WalError) -> TopoDbError {
        TopoDbError::Durability(e)
    }
}

impl From<query::ParseError> for TopoDbError {
    fn from(e: query::ParseError) -> TopoDbError {
        TopoDbError::Parse { message: e.message, position: e.position }
    }
}

impl From<query::PrepareError> for TopoDbError {
    fn from(e: query::PrepareError) -> TopoDbError {
        match e {
            query::PrepareError::Parse(p) => p.into(),
            query::PrepareError::FreeRegionVariable(_) => TopoDbError::Eval(e.to_string()),
        }
    }
}

impl From<query::EvalError> for TopoDbError {
    fn from(e: query::EvalError) -> TopoDbError {
        TopoDbError::Eval(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_errors_carry_the_byte_position() {
        let err = TopoDbError::from(query::parse("overlap(A, %)").unwrap_err());
        let TopoDbError::Parse { position, .. } = &err else {
            panic!("expected a parse error, got {err:?}")
        };
        assert_eq!(*position, 11, "position of the `%`");
        assert_eq!(err.parse_position(), Some(11));
        assert!(err.to_string().contains("at byte 11"), "{err}");

        // Truncated input: the failure is at end of input.
        let err = TopoDbError::from(query::parse("overlap(A,").unwrap_err());
        assert_eq!(err.parse_position(), None);
        assert!(err.to_string().contains("at end of input"), "{err}");
    }
}
