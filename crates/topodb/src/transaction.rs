//! The batched write path of the facade: transactions that coalesce any
//! number of mutations into one epoch bump.

use crate::TopoDatabase;
use spatial_core::region::Region;

/// A buffered mutation.
enum Op {
    Insert(String, Region),
    Remove(String),
}

/// A write transaction on a [`TopoDatabase`], obtained from
/// [`TopoDatabase::begin`].
///
/// Mutations are buffered in order and applied atomically (with respect to
/// the database's derived structures) by [`Transaction::commit`]: however
/// many regions the batch inserts, replaces or removes, the database starts
/// **one** new epoch, evicts the cached components of the *union* of the
/// changed names once, and the next read performs one re-partition, one
/// parallel re-sweep of the affected components and one global assembly —
/// instead of paying an eviction/re-assembly per mutation as a sequence of
/// bare [`TopoDatabase::insert`] calls would.
///
/// A commit whose operations change nothing (removals of names that do not
/// exist, replacements of a region by an identical one) is a no-op: no
/// epoch bump, no eviction. Dropping a
/// transaction without committing (or calling [`Transaction::rollback`])
/// discards the buffered operations; the database is untouched, since
/// nothing is applied before `commit`.
///
/// Snapshots taken before the commit keep answering for their own epoch;
/// see [`crate::Snapshot`].
///
/// ```
/// use topodb::TopoDatabase;
/// use topodb::spatial_core::prelude::*;
///
/// let mut db = TopoDatabase::new();
/// let mut txn = db.begin();
/// txn.insert("A", Region::rect_from_ints(0, 0, 4, 4));
/// txn.insert("B", Region::rect_from_ints(10, 0, 14, 4));
/// txn.remove("Ghost"); // not present: contributes nothing
/// let commit = txn.commit();
/// assert_eq!(commit.epoch, 1);
/// assert_eq!(commit.changed, ["A", "B"]);
/// ```
pub struct Transaction<'db> {
    db: &'db mut TopoDatabase,
    ops: Vec<Op>,
}

/// What a [`Transaction::commit`] did.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CommitSummary {
    /// The database's update epoch after the commit. Equal to the pre-commit
    /// epoch when the batch changed nothing, exactly one higher otherwise.
    pub epoch: u64,
    /// The names whose region membership or geometry actually changed, in
    /// first-change order (a removal of an absent name does not appear).
    pub changed: Vec<String>,
}

impl<'db> Transaction<'db> {
    pub(crate) fn new(db: &'db mut TopoDatabase) -> Transaction<'db> {
        Transaction { db, ops: Vec::new() }
    }

    /// Buffer an insert (or replacement) of a named region.
    pub fn insert<S: Into<String>>(&mut self, name: S, region: Region) -> &mut Self {
        self.ops.push(Op::Insert(name.into(), region));
        self
    }

    /// Buffer a removal. Removing a name that does not exist at application
    /// time is a no-op and does not count as a change.
    pub fn remove<S: Into<String>>(&mut self, name: S) -> &mut Self {
        self.ops.push(Op::Remove(name.into()));
        self
    }

    /// Number of buffered operations.
    pub fn pending_ops(&self) -> usize {
        self.ops.len()
    }

    /// Apply the buffered operations in order and start at most one new
    /// epoch (none if nothing changed). Returns the resulting epoch and the
    /// changed names.
    pub fn commit(self) -> CommitSummary {
        let mut changed: Vec<String> = Vec::new();
        for op in self.ops {
            match op {
                Op::Insert(name, region) => {
                    let replaced = self.db.instance.insert(name.clone(), region);
                    // Replacing a region with an identical one changes
                    // nothing (compare against the stored geometry; `insert`
                    // consumed the new one).
                    let unchanged = replaced.is_some()
                        && self.db.instance.ext(&name) == replaced.as_ref();
                    if !unchanged && !changed.contains(&name) {
                        changed.push(name);
                    }
                }
                Op::Remove(name) => {
                    if self.db.instance.remove(&name).is_some() && !changed.contains(&name) {
                        changed.push(name);
                    }
                }
            }
        }
        if !changed.is_empty() {
            self.db.invalidate(&changed);
        }
        CommitSummary { epoch: self.db.update_epoch(), changed }
    }

    /// Discard the buffered operations without touching the database.
    /// (Equivalent to dropping the transaction; provided for explicitness.)
    pub fn rollback(self) {}
}
