//! The batched write path of the facade: transactions that coalesce any
//! number of mutations into one epoch bump.

use crate::TopoDatabase;
use spatial_core::region::Region;

/// A buffered mutation.
pub(crate) enum Op {
    /// Insert (or replace) a named region.
    Insert(String, Region),
    /// Remove a named region (a no-op at application time if absent).
    Remove(String),
}

/// A write transaction on a [`TopoDatabase`], obtained from
/// [`TopoDatabase::begin`] (exclusive writer) or
/// [`TopoDatabase::begin_shared`] (any number of concurrent writers over a
/// shared `&TopoDatabase`).
///
/// Mutations are buffered in order and applied atomically by
/// [`Transaction::commit`]: however many regions the batch inserts, replaces
/// or removes, the commit starts **one** new epoch, re-sweeps only the
/// components of the *union* of the changed names (reusing every untouched
/// component of its base epoch pointer-identically) and publishes one
/// fully-built epoch — instead of paying an epoch and a re-sweep per
/// mutation as a sequence of bare [`TopoDatabase::insert`] calls would. On
/// the epoch-chain backend the build happens outside any lock, so
/// concurrent transactions over disjoint components build concurrently;
/// see the "Concurrency model" notes on [`TopoDatabase`].
///
/// A commit whose operations change nothing (removals of names that do not
/// exist, replacements of a region by an identical one) is a no-op: no
/// epoch bump, no re-sweep. Dropping a transaction without committing (or
/// calling [`Transaction::rollback`]) discards the buffered operations; the
/// database is untouched, since nothing is applied before `commit`.
///
/// Snapshots taken before the commit keep answering for their own epoch;
/// see [`crate::Snapshot`].
///
/// ```
/// use topodb::TopoDatabase;
/// use topodb::spatial_core::prelude::*;
///
/// let mut db = TopoDatabase::new();
/// let mut txn = db.begin();
/// txn.insert("A", Region::rect_from_ints(0, 0, 4, 4));
/// txn.insert("B", Region::rect_from_ints(10, 0, 14, 4));
/// txn.remove("Ghost"); // not present: contributes nothing
/// let commit = txn.commit();
/// assert_eq!(commit.epoch, 1);
/// assert_eq!(commit.changed, ["A", "B"]);
/// ```
pub struct Transaction<'db> {
    db: &'db TopoDatabase,
    ops: Vec<Op>,
}

/// What a [`Transaction::commit`] did.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct CommitSummary {
    /// The database's update epoch after the commit: the epoch this batch
    /// published, or the base epoch the transaction committed against when
    /// the batch changed nothing.
    pub epoch: u64,
    /// The names whose region membership or geometry actually changed, in
    /// first-change order (a removal of an absent name does not appear).
    pub changed: Vec<String>,
}

impl<'db> Transaction<'db> {
    pub(crate) fn new(db: &'db TopoDatabase) -> Transaction<'db> {
        Transaction { db, ops: Vec::new() }
    }

    /// Buffer an insert (or replacement) of a named region.
    pub fn insert<S: Into<String>>(&mut self, name: S, region: Region) -> &mut Self {
        self.ops.push(Op::Insert(name.into(), region));
        self
    }

    /// Buffer a removal. Removing a name that does not exist at application
    /// time is a no-op and does not count as a change.
    pub fn remove<S: Into<String>>(&mut self, name: S) -> &mut Self {
        self.ops.push(Op::Remove(name.into()));
        self
    }

    /// Number of buffered operations.
    pub fn pending_ops(&self) -> usize {
        self.ops.len()
    }

    /// Apply the buffered operations in order and publish at most one new
    /// epoch (none if nothing changed). Returns the resulting epoch and the
    /// changed names.
    ///
    /// An `Err` — always [`TopoDbError::Degraded`](crate::TopoDbError) —
    /// means the commit published **nothing**: readers stay on the previous
    /// epoch, the log holds no record of the batch, and the database is in
    /// read-only degraded mode (this commit's storage failure put it there,
    /// or an earlier one already had). Transient storage failures are
    /// retried internally per the configured
    /// [`RetryPolicy`](crate::RetryPolicy) before any of that; a
    /// successfully retried commit returns `Ok` like any other.
    pub fn try_commit(self) -> Result<CommitSummary, crate::TopoDbError> {
        self.db.commit_ops(self.ops)
    }

    /// [`Transaction::try_commit`], panicking on failure.
    ///
    /// In-memory commits cannot fail, so for the common case this is the
    /// ergonomic choice. Durable callers that want to *handle* storage
    /// degradation (rather than crash) should use
    /// [`Transaction::try_commit`].
    ///
    /// # Panics
    ///
    /// If a durable commit fails — the database has degraded to read-only.
    pub fn commit(self) -> CommitSummary {
        self.try_commit().unwrap_or_else(|e| {
            panic!("transaction commit failed: {e}; use try_commit() to handle this typed")
        })
    }

    /// Discard the buffered operations without touching the database.
    /// (Equivalent to dropping the transaction; provided for explicitness.)
    pub fn rollback(self) {}
}
