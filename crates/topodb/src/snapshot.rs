//! Immutable, concurrently shareable read handles over one epoch of a
//! [`TopoDatabase`](crate::TopoDatabase).

use crate::TopoDbError;
use arrangement::{ComplexRead, GlobalComplexView};
use invariant::Invariant;
use query::cell_eval::CellEvaluator;
use query::{PreparedQuery, QueryOutput};
use relations::Relation4;
use std::sync::{Arc, OnceLock};

/// An immutable snapshot of a [`TopoDatabase`](crate::TopoDatabase): the
/// assembled zero-copy complex view of one epoch, plus every derived read
/// path — relations, invariant, thematic database and query evaluation —
/// computed lazily *inside the snapshot* and shared by all of its clones.
///
/// A snapshot is the read half of the facade's read/write split:
///
/// * **Cheap to obtain and clone.** [`TopoDatabase::snapshot`] hands out a
///   clone of the cached snapshot (one `Arc` bump); cloning a snapshot is a
///   second `Arc` bump. No cell, label or region is copied.
/// * **`Send + Sync`.** All state is behind `Arc`s and [`OnceLock`]s, so one
///   snapshot can serve query traffic from any number of threads at once —
///   `thread::scope` readers over a shared `&Snapshot` are a compiling (and
///   tested) program. The database itself is `Sync` too (its cache sits
///   behind an `RwLock`), so even *acquiring* snapshots can happen from many
///   threads concurrently; a snapshot additionally detaches the reader from
///   later writes.
/// * **Epoch-stable.** A snapshot never observes later writes: a batch
///   committed after [`TopoDatabase::snapshot`] leaves existing snapshots
///   answering for their own epoch ([`Snapshot::epoch`]) while the next
///   `snapshot()` call reflects the batch.
///
/// Query evaluation accepts both query strings ([`Snapshot::query`]) and
/// pre-compiled [`PreparedQuery`]s ([`Snapshot::evaluate`]); results are
/// [`QueryOutput::Bool`] for sentences and [`QueryOutput::Bindings`] (the
/// satisfying name assignments) for formulas with free name variables. The
/// first evaluation on a snapshot builds its [`CellEvaluator`] from the
/// zero-copy view; later evaluations (from any thread, any clone) share it.
///
/// [`TopoDatabase::snapshot`]: crate::TopoDatabase::snapshot
#[derive(Clone, Debug)]
pub struct Snapshot {
    inner: Arc<SnapshotInner>,
}

#[derive(Debug)]
struct SnapshotInner {
    epoch: u64,
    view: Arc<GlobalComplexView>,
    invariant: OnceLock<Arc<Invariant>>,
    evaluator: OnceLock<Arc<CellEvaluator>>,
}

impl Snapshot {
    pub(crate) fn new(epoch: u64, view: Arc<GlobalComplexView>) -> Snapshot {
        Snapshot {
            inner: Arc::new(SnapshotInner {
                epoch,
                view,
                invariant: OnceLock::new(),
                evaluator: OnceLock::new(),
            }),
        }
    }

    /// The update epoch this snapshot was taken at (see
    /// [`TopoDatabase::update_epoch`](crate::TopoDatabase::update_epoch)).
    pub fn epoch(&self) -> u64 {
        self.inner.epoch
    }

    /// Region names in canonical order.
    pub fn names(&self) -> Vec<String> {
        self.inner.view.region_names().to_vec()
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.inner.view.region_names().len()
    }

    /// Is the snapshot empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The zero-copy global complex view backing this snapshot, shared
    /// behind an [`Arc`].
    pub fn complex_view(&self) -> Arc<GlobalComplexView> {
        Arc::clone(&self.inner.view)
    }

    pub(crate) fn view_ref(&self) -> &GlobalComplexView {
        &self.inner.view
    }

    /// The topological invariant `T_I` of this snapshot's instance, computed
    /// on first use and shared by every clone of the snapshot.
    pub fn invariant(&self) -> Arc<Invariant> {
        Arc::clone(self.inner.invariant.get_or_init(|| {
            Arc::new(Invariant::from_complex(self.inner.view.as_ref()))
        }))
    }

    /// The thematic relational database `thematic(I)` over the schema `Th`.
    pub fn thematic(&self) -> relstore::Database {
        invariant::thematic::to_database(&self.invariant())
    }

    /// The 4-intersection relation between two named regions.
    pub fn relation(&self, a: &str, b: &str) -> Result<Relation4, TopoDbError> {
        for name in [a, b] {
            if self.inner.view.region_index(name).is_none() {
                return Err(TopoDbError::UnknownRegion(name.to_string()));
            }
        }
        relations::relation_in_complex(self.inner.view.as_ref(), a, b)
            .ok_or_else(|| TopoDbError::UnknownRegion(format!("{a} / {b}")))
    }

    /// All pairwise relations, in name order.
    pub fn relation_matrix(&self) -> Vec<(String, String, Relation4)> {
        relations::all_pairwise_relations_in_complex(self.inner.view.as_ref())
    }

    /// One region's row of the relation matrix: its relation to every other
    /// region, in name order — `O(regions)` classifications instead of the
    /// full `O(regions²)` matrix.
    pub fn relations_of(&self, name: &str) -> Result<Vec<(String, Relation4)>, TopoDbError> {
        relations::relations_with_in_complex(self.inner.view.as_ref(), name)
            .ok_or_else(|| TopoDbError::UnknownRegion(name.to_string()))
    }

    /// Is this snapshot topologically equivalent (homeomorphic) to another?
    /// Decided via invariant isomorphism (Theorem 3.4).
    pub fn homeomorphic_to(&self, other: &Snapshot) -> bool {
        if self.inner.view.region_names() != other.inner.view.region_names() {
            return false;
        }
        invariant::isomorphic(&self.invariant(), &other.invariant())
    }

    /// The shared cell-complex query evaluator of this snapshot, built on
    /// first use. Exposed so callers running many [`PreparedQuery`]s can
    /// amortize even the `Arc` clone; `query`/`evaluate` use it internally.
    /// The evaluator is seeded with the snapshot's cached spatial index
    /// ([`Snapshot::spatial_index`]), so the semi-join planner never builds
    /// a second one.
    pub fn evaluator(&self) -> Arc<CellEvaluator> {
        Arc::clone(self.inner.evaluator.get_or_init(|| {
            Arc::new(
                CellEvaluator::from_complex(self.inner.view.as_ref())
                    .with_spatial_index(self.inner.view.region_bbox_index()),
            )
        }))
    }

    /// The STR-packed R-tree over this snapshot's region bounding boxes,
    /// built once per epoch inside the view and shared by the query planner
    /// ([`Snapshot::evaluator`]) and any direct spatial probing.
    pub fn spatial_index(&self) -> Arc<arrangement::SpatialIndex> {
        self.inner.view.region_bbox_index()
    }

    /// Parse and evaluate a query in the concrete syntax of the `query`
    /// crate. Sentences return [`QueryOutput::Bool`]; formulas with free
    /// name variables return [`QueryOutput::Bindings`] — the satisfying
    /// assignments of those variables to region names.
    ///
    /// To run one query against many snapshots, compile it once with
    /// [`PreparedQuery::compile`] and use [`Snapshot::evaluate`].
    pub fn query(&self, text: &str) -> Result<QueryOutput, TopoDbError> {
        self.evaluate(&PreparedQuery::compile(text)?)
    }

    /// Evaluate an already-parsed formula (see [`Snapshot::query`] for the
    /// result shape).
    pub fn query_formula(&self, formula: &query::Formula) -> Result<QueryOutput, TopoDbError> {
        self.evaluate(&PreparedQuery::from_formula(formula.clone())?)
    }

    /// Run a pre-compiled query against this snapshot. The prepared plan
    /// (AST + free-variable analysis) is reused across snapshots of any
    /// epoch; the answer always reflects *this* snapshot's instance.
    pub fn evaluate(&self, prepared: &PreparedQuery) -> Result<QueryOutput, TopoDbError> {
        prepared.run_on(&self.evaluator()).map_err(TopoDbError::from)
    }
}
