//! The facade's side of the durability protocol: attaching a write-ahead
//! log to a database, logging each commit *before* its publish (with
//! bounded retries and read-only degradation on unsurvivable failures),
//! and replaying a log back into an instance.
//!
//! The ordering protocol lives here and in `epoch.rs` (stage 3 of the
//! commit pipeline); the on-disk format, checkpoints and torn-tail
//! recovery live in the `wal` crate. See the "Durability model" section of
//! the crate docs for the full argument.

use crate::error::{ErrorClass, TopoDbError};
use crate::transaction::Op;
use spatial_core::instance::SpatialInstance;
use std::fmt;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;
use wal::{BatchRecord, SyncPolicy, Vfs, Wal, WalConfig, WalError, WalOp};

/// A source of delay for retry backoff.
///
/// The default ([`SystemClock`]) really sleeps; tests inject a recording
/// clock so backoff policy is assertable without wall-clock time.
pub trait Clock: Send + Sync + fmt::Debug {
    /// Block the calling thread for (about) `d`.
    fn sleep(&self, d: Duration);
}

/// The real clock: `std::thread::sleep`.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl Clock for SystemClock {
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// Bounded retry-with-backoff for transient storage failures.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RetryPolicy {
    /// Total attempts per operation, including the first (minimum 1).
    /// Default: 4.
    pub max_attempts: u32,
    /// Backoff before the first retry, doubling per subsequent retry.
    /// Default: 1 ms.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, backoff: Duration::from_millis(1) }
    }
}

impl RetryPolicy {
    /// This policy with a different attempt budget.
    pub fn with_max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// This policy with a different base backoff.
    pub fn with_backoff(mut self, backoff: Duration) -> Self {
        self.backoff = backoff;
        self
    }
}

/// Everything configurable about a durable database's storage: the log
/// tunables, the retry policy, the storage backend, and the backoff
/// clock.
#[derive(Clone, Debug)]
pub struct StorageOptions {
    /// Write-ahead log tunables (sync policy, rotation, checkpoint
    /// cadence).
    pub wal: WalConfig,
    /// Retry budget and backoff for transient storage failures.
    pub retry: RetryPolicy,
    /// The storage backend. Default: the real filesystem.
    pub vfs: Arc<dyn Vfs>,
    /// The clock used for retry backoff. Default: really sleeps.
    pub clock: Arc<dyn Clock>,
}

impl Default for StorageOptions {
    fn default() -> Self {
        StorageOptions {
            wal: WalConfig::default(),
            retry: RetryPolicy::default(),
            vfs: wal::RealFs::shared(),
            clock: Arc::new(SystemClock),
        }
    }
}

impl StorageOptions {
    /// Default options with a different log config (the shape the older
    /// `*_with_config` constructors take).
    pub fn from_wal_config(wal: WalConfig) -> Self {
        StorageOptions { wal, ..StorageOptions::default() }
    }

    /// This set of options on a different storage backend.
    pub fn with_vfs(mut self, vfs: Arc<dyn Vfs>) -> Self {
        self.vfs = vfs;
        self
    }

    /// This set of options with a different retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// This set of options with a different backoff clock.
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = clock;
        self
    }
}

/// Counters for the retry/degradation machinery, surfaced through
/// [`crate::Health`].
#[derive(Debug, Default)]
pub(crate) struct DurabilityCounters {
    pub(crate) transient_retries: AtomicU64,
    pub(crate) retries_exhausted: AtomicU64,
    pub(crate) degraded_rejections: AtomicU64,
    pub(crate) maintenance_errors: AtomicU64,
    pub(crate) degrade_events: AtomicU64,
}

/// A database's attachment to its write-ahead log.
///
/// `publish_lock` serializes commit *publishes* (WAL append + head
/// compare-exchange) — not builds, which stay concurrent. Holding it while
/// checking that the head is still the commit's base makes the subsequent
/// compare-exchange infallible, which is what guarantees a batch is logged
/// exactly once, on the attempt that wins: a stale head is detected
/// *before* anything is appended, and the losing attempt rebuilds and
/// retries without having logged a byte.
pub(crate) struct Durability {
    // Field order matters: the `Wal` flushes on drop, and must do so
    // before an ephemeral guard (if any) deletes the directory.
    wal: Wal,
    pub(crate) publish_lock: Mutex<()>,
    retry: RetryPolicy,
    clock: Arc<dyn Clock>,
    /// Set exactly once, by whichever failure first proved storage
    /// unsurvivable; every later commit fails fast with this root cause.
    degraded: OnceLock<WalError>,
    pub(crate) counters: DurabilityCounters,
    _ephemeral: Option<EphemeralDir>,
}

/// Deletes an environment-attached throwaway log directory on drop.
struct EphemeralDir(PathBuf);

impl Drop for EphemeralDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

impl Durability {
    pub(crate) fn new(wal: Wal) -> Durability {
        Durability::with_policy(wal, RetryPolicy::default(), Arc::new(SystemClock))
    }

    pub(crate) fn with_policy(wal: Wal, retry: RetryPolicy, clock: Arc<dyn Clock>) -> Durability {
        Durability {
            wal,
            publish_lock: Mutex::new(()),
            retry,
            clock,
            degraded: OnceLock::new(),
            counters: DurabilityCounters::default(),
            _ephemeral: None,
        }
    }

    /// If the database has degraded to read-only, the root cause.
    pub(crate) fn degraded_cause(&self) -> Option<WalError> {
        self.degraded.get().cloned()
    }

    /// Record a commit rejected because the database was already degraded,
    /// and build the typed error for it.
    pub(crate) fn reject_degraded(&self, cause: WalError) -> TopoDbError {
        self.counters.degraded_rejections.fetch_add(1, Ordering::Relaxed);
        TopoDbError::Degraded(cause)
    }

    /// Transition to read-only degraded mode (idempotent: only the first
    /// cause is kept as the root cause) and return the typed error.
    fn degrade(&self, cause: WalError) -> TopoDbError {
        if self.degraded.set(cause).is_ok() {
            self.counters.degrade_events.fetch_add(1, Ordering::Relaxed);
        }
        TopoDbError::Degraded(self.degraded.get().expect("just set").clone())
    }

    /// Run `op`, retrying transient failures per the policy (with
    /// exponentially-backed-off sleeps on the injected clock). Any
    /// unsurvivable outcome — a fatal or corrupting error, or a transient
    /// one that exhausts the attempt budget — degrades the database and
    /// returns the typed [`TopoDbError::Degraded`]. Fails fast if already
    /// degraded.
    fn with_retry<T>(&self, mut op: impl FnMut() -> Result<T, WalError>) -> Result<T, TopoDbError> {
        if let Some(cause) = self.degraded_cause() {
            return Err(self.reject_degraded(cause));
        }
        let mut attempt: u32 = 0;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) => match ErrorClass::of(&e) {
                    ErrorClass::Transient if attempt + 1 < self.retry.max_attempts.max(1) => {
                        self.counters.transient_retries.fetch_add(1, Ordering::Relaxed);
                        self.clock.sleep(self.retry.backoff.saturating_mul(1 << attempt.min(10)));
                        attempt += 1;
                    }
                    class => {
                        if class == ErrorClass::Transient {
                            self.counters.retries_exhausted.fetch_add(1, Ordering::Relaxed);
                        }
                        return Err(self.degrade(e));
                    }
                },
            }
        }
    }

    /// Append one committed batch. Called with the publish serialized (the
    /// epoch chain holds `publish_lock`; the legacy backend holds its cache
    /// write lock), so records arrive in exactly publish order.
    ///
    /// `Ok` means the record is durably framed in the log (to the
    /// configured sync policy) — the commit may be acknowledged. `Err` is
    /// always [`TopoDbError::Degraded`]: transient failures were retried
    /// per the policy, and whatever remains has degraded the database to
    /// read-only. The commit must not publish.
    pub(crate) fn log_batch(
        &self,
        epoch: u64,
        ops: &[Op],
        changed: &[String],
        instance_after: &SpatialInstance,
    ) -> Result<(), TopoDbError> {
        let record = BatchRecord {
            epoch,
            ops: ops
                .iter()
                .map(|op| match op {
                    Op::Insert(name, region) => WalOp::Insert(name.clone(), region.clone()),
                    Op::Remove(name) => WalOp::Remove(name.clone()),
                })
                .collect(),
            changed: changed.to_vec(),
        };
        let outcome = self.with_retry(|| self.wal.append_batch(&record, instance_after))?;
        if let Some(m) = outcome.maintenance {
            // The record is durable, so the commit stands; but failed
            // housekeeping (checkpoint/rotation) means the log may refuse
            // the *next* append. Count it, and degrade proactively on
            // anything non-transient so later commits fail typed instead
            // of rediscovering the broken appender.
            self.counters.maintenance_errors.fetch_add(1, Ordering::Relaxed);
            if ErrorClass::of(&m) != ErrorClass::Transient {
                let _ = self.degrade(m);
            }
        }
        Ok(())
    }

    /// Force a checkpoint, with the same retry/degradation discipline as
    /// appends.
    pub(crate) fn checkpoint(&self, instance: &SpatialInstance) -> Result<(), TopoDbError> {
        self.with_retry(|| self.wal.checkpoint(instance))
    }

    /// The underlying log (benches force checkpoints/syncs through this).
    pub(crate) fn wal(&self) -> &Wal {
        &self.wal
    }
}

/// Replay a recovered record sequence over the checkpoint instance using
/// the same `apply_ops` the live commit path uses, cross-checking each
/// record's logged changed set against the replayed one. Returns the
/// instance at the final replayed record (or the checkpoint itself if no
/// records are given).
pub(crate) fn replay(
    base: &SpatialInstance,
    records: &[BatchRecord],
) -> Result<SpatialInstance, TopoDbError> {
    let mut instance = base.clone();
    for record in records {
        let ops: Vec<Op> = record
            .ops
            .iter()
            .map(|op| match op {
                WalOp::Insert(name, region) => Op::Insert(name.clone(), region.clone()),
                WalOp::Remove(name) => Op::Remove(name.clone()),
            })
            .collect();
        let (next, changed) = crate::epoch::apply_ops(&instance, &ops);
        if changed != record.changed {
            return Err(TopoDbError::Durability(WalError::Corrupt {
                segment: format!("record for epoch {}", record.epoch),
                offset: 0,
                detail: format!(
                    "replay changed {:?} but the log recorded {:?}",
                    changed, record.changed
                ),
            }));
        }
        instance = next;
    }
    Ok(instance)
}

// ---- environment-attached ephemeral logs ---------------------------------

/// Should databases constructed without an explicit path attach a
/// throwaway, temp-dir-backed log? `TOPODB_WAL=1|on|true|yes`
/// (case-insensitive) says yes — this is how CI runs the entire suite with
/// durability in the loop.
pub(crate) fn wal_enabled_by_env() -> bool {
    match std::env::var("TOPODB_WAL") {
        Ok(v) => matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "on" | "true" | "yes"),
        Err(_) => false,
    }
}

/// Sync policy for environment-attached logs: `TOPODB_WAL_SYNC=
/// percommit|interval|none`. Defaults to `none` — the env attach exists to
/// exercise the logging/replay *protocol* across the whole suite, and
/// thousands of fsyncs would dominate its runtime. `percommit` is the
/// default for real [`crate::TopoDatabase::create`] databases.
pub(crate) fn wal_sync_by_env() -> SyncPolicy {
    match std::env::var("TOPODB_WAL_SYNC") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "percommit" | "per-commit" | "always" => SyncPolicy::PerCommit,
            "interval" | "group" => SyncPolicy::Interval(std::time::Duration::from_millis(5)),
            _ => SyncPolicy::None,
        },
        Err(_) => SyncPolicy::None,
    }
}

/// Storage backend for environment-attached logs: `TOPODB_VFS=sim` runs
/// them on a fresh in-memory [`wal::SimFs`] per database (hermetic, no
/// temp files); anything else (or unset) uses the real filesystem.
pub(crate) fn sim_vfs_by_env() -> bool {
    match std::env::var("TOPODB_VFS") {
        Ok(v) => matches!(v.trim().to_ascii_lowercase().as_str(), "sim" | "simfs" | "mem"),
        Err(_) => false,
    }
}

/// Create the throwaway env-attached log for `instance`, or `None` if
/// creation fails (the env attach is best-effort test plumbing — a
/// read-only temp filesystem should not take the whole suite down with
/// it).
pub(crate) fn ephemeral(instance: &SpatialInstance) -> Option<Durability> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let cfg = wal::WalConfig::default().with_sync(wal_sync_by_env());
    if sim_vfs_by_env() {
        // A fresh in-memory filesystem per database: nothing to clean up.
        let sim: Arc<dyn Vfs> = Arc::new(wal::SimFs::new());
        let wal =
            Wal::create_with_vfs(sim, std::path::Path::new("/wal"), 0, instance, cfg).ok()?;
        return Some(Durability::new(wal));
    }
    let dir = std::env::temp_dir().join(format!(
        "topodb-wal-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    match Wal::create(&dir, 0, instance, cfg) {
        Ok(w) => {
            let mut d = Durability::new(w);
            d._ephemeral = Some(EphemeralDir(dir));
            Some(d)
        }
        Err(_) => None,
    }
}
