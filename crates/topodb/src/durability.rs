//! The facade's side of the durability protocol: attaching a write-ahead
//! log to a database, logging each commit *before* its publish, and
//! replaying a log back into an instance.
//!
//! The ordering protocol lives here and in `epoch.rs` (stage 3 of the
//! commit pipeline); the on-disk format, checkpoints and torn-tail
//! recovery live in the `wal` crate. See the "Durability model" section of
//! the crate docs for the full argument.

use crate::error::TopoDbError;
use crate::transaction::Op;
use spatial_core::instance::SpatialInstance;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use wal::{BatchRecord, SyncPolicy, Wal, WalError, WalOp};

/// A database's attachment to its write-ahead log.
///
/// `publish_lock` serializes commit *publishes* (WAL append + head
/// compare-exchange) — not builds, which stay concurrent. Holding it while
/// checking that the head is still the commit's base makes the subsequent
/// compare-exchange infallible, which is what guarantees a batch is logged
/// exactly once, on the attempt that wins: a stale head is detected
/// *before* anything is appended, and the losing attempt rebuilds and
/// retries without having logged a byte.
pub(crate) struct Durability {
    // Field order matters: the `Wal` flushes on drop, and must do so
    // before an ephemeral guard (if any) deletes the directory.
    wal: Wal,
    pub(crate) publish_lock: Mutex<()>,
    _ephemeral: Option<EphemeralDir>,
}

/// Deletes an environment-attached throwaway log directory on drop.
struct EphemeralDir(PathBuf);

impl Drop for EphemeralDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

impl Durability {
    pub(crate) fn new(wal: Wal) -> Durability {
        Durability { wal, publish_lock: Mutex::new(()), _ephemeral: None }
    }

    /// Append one committed batch. Called with the publish serialized (the
    /// epoch chain holds `publish_lock`; the legacy backend holds its cache
    /// write lock), so records arrive in exactly publish order.
    ///
    /// Durability failures panic: `commit()` promises an epoch number, and
    /// continuing to accept writes a crash would silently lose is worse
    /// than stopping. See "Durability model" in the crate docs.
    pub(crate) fn log_batch(
        &self,
        epoch: u64,
        ops: &[Op],
        changed: &[String],
        instance_after: &SpatialInstance,
    ) {
        let record = BatchRecord {
            epoch,
            ops: ops
                .iter()
                .map(|op| match op {
                    Op::Insert(name, region) => WalOp::Insert(name.clone(), region.clone()),
                    Op::Remove(name) => WalOp::Remove(name.clone()),
                })
                .collect(),
            changed: changed.to_vec(),
        };
        if let Err(e) = self.wal.append_batch(&record, instance_after) {
            panic!("write-ahead log append failed; refusing to commit undurable epochs: {e}");
        }
    }

    /// The underlying log (benches force checkpoints/syncs through this).
    pub(crate) fn wal(&self) -> &Wal {
        &self.wal
    }
}

/// Replay a recovered record sequence over the checkpoint instance using
/// the same `apply_ops` the live commit path uses, cross-checking each
/// record's logged changed set against the replayed one. Returns the
/// instance at the final replayed record (or the checkpoint itself if no
/// records are given).
pub(crate) fn replay(
    base: &SpatialInstance,
    records: &[BatchRecord],
) -> Result<SpatialInstance, TopoDbError> {
    let mut instance = base.clone();
    for record in records {
        let ops: Vec<Op> = record
            .ops
            .iter()
            .map(|op| match op {
                WalOp::Insert(name, region) => Op::Insert(name.clone(), region.clone()),
                WalOp::Remove(name) => Op::Remove(name.clone()),
            })
            .collect();
        let (next, changed) = crate::epoch::apply_ops(&instance, &ops);
        if changed != record.changed {
            return Err(TopoDbError::Durability(WalError::Corrupt {
                segment: format!("record for epoch {}", record.epoch),
                offset: 0,
                detail: format!(
                    "replay changed {:?} but the log recorded {:?}",
                    changed, record.changed
                ),
            }));
        }
        instance = next;
    }
    Ok(instance)
}

// ---- environment-attached ephemeral logs ---------------------------------

/// Should databases constructed without an explicit path attach a
/// throwaway, temp-dir-backed log? `TOPODB_WAL=1|on|true|yes`
/// (case-insensitive) says yes — this is how CI runs the entire suite with
/// durability in the loop.
pub(crate) fn wal_enabled_by_env() -> bool {
    match std::env::var("TOPODB_WAL") {
        Ok(v) => matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "on" | "true" | "yes"),
        Err(_) => false,
    }
}

/// Sync policy for environment-attached logs: `TOPODB_WAL_SYNC=
/// percommit|interval|none`. Defaults to `none` — the env attach exists to
/// exercise the logging/replay *protocol* across the whole suite, and
/// thousands of fsyncs would dominate its runtime. `percommit` is the
/// default for real [`crate::TopoDatabase::create`] databases.
pub(crate) fn wal_sync_by_env() -> SyncPolicy {
    match std::env::var("TOPODB_WAL_SYNC") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "percommit" | "per-commit" | "always" => SyncPolicy::PerCommit,
            "interval" | "group" => SyncPolicy::Interval(std::time::Duration::from_millis(5)),
            _ => SyncPolicy::None,
        },
        Err(_) => SyncPolicy::None,
    }
}

/// Create the throwaway env-attached log for `instance`, or `None` if
/// creation fails (the env attach is best-effort test plumbing — a
/// read-only temp filesystem should not take the whole suite down with
/// it).
pub(crate) fn ephemeral(instance: &SpatialInstance) -> Option<Durability> {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "topodb-wal-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let cfg = wal::WalConfig::default().with_sync(wal_sync_by_env());
    match Wal::create(&dir, 0, instance, cfg) {
        Ok(w) => Some(Durability {
            wal: w,
            publish_lock: Mutex::new(()),
            _ephemeral: Some(EphemeralDir(dir)),
        }),
        Err(_) => None,
    }
}
