//! # topodb
//!
//! A topological spatial database, reproducing the system described in
//! *"Topological Queries in Spatial Databases"* (Papadimitriou, Suciu, Vianu;
//! PODS 1996 / JCSS 1999).
//!
//! [`TopoDatabase`] is the user-facing entry point, designed around a
//! **read/write split**:
//!
//! * **Reads** go through an immutable [`Snapshot`]
//!   ([`TopoDatabase::snapshot`]): an all-`Arc`, `Send + Sync`, cheap-to-clone
//!   handle over one epoch of the database that owns the assembled zero-copy
//!   complex view and answers 4-intersection relations, region-based
//!   queries, the topological invariant `T_I` (Section 3), homeomorphism
//!   tests (Theorem 3.4) and the thematic relational summary `thematic(I)`
//!   (Corollary 3.7) — from any number of threads concurrently.
//! * **Writes** go through a [`Transaction`] ([`TopoDatabase::begin`]):
//!   any number of inserts/removals commit as **one** batch — one epoch
//!   bump, one eviction of the affected cached components, and at the next
//!   read one parallel re-sweep of only the union of affected components
//!   plus one global assembly.
//! * **Queries** compile once into a [`PreparedQuery`]
//!   (`query::PreparedQuery::compile`) and run against any snapshot of any
//!   epoch; formulas with free name variables are *set-returning* — they
//!   yield [`QueryOutput::Bindings`], the satisfying name assignments, in
//!   the paper's `FO(Region, Region')` syntax (Section 4, evaluated over the
//!   cell complex as in Section 7).
//!
//! The individual crates (`spatial-core`, `arrangement`, `invariant`,
//! `relations`, `relstore`, `query`) are re-exported for direct use.
//!
//! ## Example
//!
//! ```
//! use topodb::{QueryOutput, TopoDatabase};
//! use topodb::query::PreparedQuery;
//! use topodb::spatial_core::prelude::*;
//!
//! let mut db = TopoDatabase::new();
//!
//! // Write path: one transaction, one epoch bump for the whole batch.
//! let mut txn = db.begin();
//! txn.insert("Lake", Region::polygon_from_ints(&[(0, 0), (8, 0), (8, 6), (0, 6)]).unwrap());
//! txn.insert("Park", Region::rect_from_ints(5, 2, 12, 9));
//! txn.commit();
//!
//! // Read path: an immutable, Send + Sync snapshot.
//! let snap = db.snapshot();
//! assert_eq!(snap.relation("Lake", "Park").unwrap().name(), "overlap");
//! assert_eq!(
//!     snap.query("exists r . subset(r, Lake) and subset(r, Park)").unwrap(),
//!     QueryOutput::Bool(true)
//! );
//!
//! // Prepared, binding-producing query: which regions overlap the lake?
//! let q = PreparedQuery::compile("overlap(ext(x), Lake)").unwrap();
//! let rows = snap.evaluate(&q).unwrap();
//! assert_eq!(rows.bindings().unwrap()[0]["x"], "Park");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use arrangement;
pub use invariant;
pub use query;
pub use relations;
pub use relstore;
pub use spatial_core;

mod error;
mod snapshot;
mod transaction;

pub use error::TopoDbError;
pub use query::{PreparedQuery, QueryOutput};
pub use snapshot::Snapshot;
pub use transaction::{CommitSummary, Transaction};

use arrangement::{CellComplex, ComponentComplex, GlobalComplexView};
use invariant::Invariant;
use relations::Relation4;
use spatial_core::instance::SpatialInstance;
use spatial_core::region::Region;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// A topological spatial database: named regions plus the derived structures
/// of the paper (cell complex, invariant, thematic relational summary),
/// computed lazily, shared zero-copy behind [`Arc`]s, and maintained
/// *incrementally* across updates.
///
/// The public surface is split into a write path and a read path:
///
/// * [`TopoDatabase::begin`] opens a [`Transaction`]; buffered
///   `insert`/`remove` operations commit as one batch with **one** epoch
///   bump and one eviction of the union of affected components.
/// * [`TopoDatabase::snapshot`] returns the [`Snapshot`] of the current
///   epoch — an immutable, `Send + Sync`, cheaply clonable read handle that
///   owns the assembled view and every derived read (relations, queries,
///   invariant, thematic). Long-lived snapshots keep answering for their
///   epoch after later commits (snapshot isolation for readers). The
///   database itself is `Sync` — the cache sits behind an [`RwLock`], so
///   *acquiring* snapshots (a read lock on the warm path) is concurrent
///   too: a service front end can share one `&TopoDatabase` across its
///   worker threads.
///
/// The inherent read methods ([`TopoDatabase::relation`],
/// [`TopoDatabase::query`], [`TopoDatabase::invariant`], …) and the
/// single-mutation [`TopoDatabase::insert`] / [`TopoDatabase::remove`] are
/// retained as thin wrappers over those two paths for convenience and
/// backward compatibility — new code should prefer snapshots and
/// transactions.
///
/// ## Component cache and epochs
///
/// The arrangement is built by the partition → per-component sweep →
/// assemble pipeline of the `arrangement` crate, and the database caches the
/// per-component sub-complexes (`Arc<ComponentComplex>`) across updates,
/// keyed by the component's region-name set. Every committed batch that
/// changes at least one region starts a new *epoch*: it drops the cached
/// snapshot and eagerly evicts the cached components containing any changed
/// region, leaving every other component untouched. At the next read the
/// instance is re-partitioned; components whose geometry now interacts with
/// a changed region surface as groups with a *new* name-set key (a cache
/// miss, so they are re-swept — concurrently, see
/// [`arrangement::parallel`]), while every unaffected group hits its cache
/// entry and is reused pointer-identically. Entries whose key no longer
/// occurs in the partition (merged or split by the batch) are pruned after
/// assembly. A batch of `k` mutations therefore costs *one* eviction pass
/// and *one* re-assembly, not `k`.
///
/// The global complex is assembled *by view* ([`GlobalComplexView`]): the
/// cached `Arc<ComponentComplex>`es are composed behind a compact id
/// translation table in `O(components + cross-component nesting)`, with no
/// per-cell copying. The cost of a commit followed by a read is therefore
/// `O(affected clusters)` re-sweeping plus an `O(components)` re-assembly —
/// fully proportional to the affected geometry — instead of a full
/// `O((n + k) log n)` re-sweep of the whole map.
///
/// Two counters pin the behavior down: [`TopoDatabase::complex_build_count`]
/// is the number of *assembled global complexes* built (any burst of reads
/// between two commits increases it by at most one), and
/// [`TopoDatabase::component_rebuild_count`] is the number of *component
/// sub-complexes* swept from scratch — the part that incremental maintenance
/// keeps proportional to the affected geometry rather than the map size.
#[derive(Default)]
pub struct TopoDatabase {
    pub(crate) instance: SpatialInstance,
    /// The derived-structure cache behind a reader-writer lock: *snapshot
    /// acquisition* itself is callable from any number of threads
    /// concurrently (`&self`, read lock on the hot path — the database is
    /// `Sync`), while a cache miss after a commit takes the write lock once
    /// to rebuild. Writes to the instance still require `&mut self`.
    cache: RwLock<Cache>,
    complex_builds: AtomicU64,
    component_rebuilds: AtomicU64,
    epoch: AtomicU64,
}

#[derive(Default)]
struct Cache {
    /// The snapshot of the current epoch — the primary read representation;
    /// it owns the zero-copy global view and lazily computes every derived
    /// structure (relations, queries, invariant).
    snapshot: Option<Snapshot>,
    /// The flat deep-copied complex, materialized lazily only when a caller
    /// explicitly asks for it via [`TopoDatabase::cell_complex`].
    flat: Option<Arc<CellComplex>>,
    /// Component sub-complexes surviving across updates, keyed by the
    /// component's sorted region-name set.
    components: BTreeMap<Vec<String>, Arc<ComponentComplex>>,
}

impl TopoDatabase {
    /// An empty database.
    pub fn new() -> Self {
        TopoDatabase::default()
    }

    /// Build a database from an existing instance.
    pub fn from_instance(instance: SpatialInstance) -> Self {
        TopoDatabase { instance, ..TopoDatabase::default() }
    }

    // ---- write path -----------------------------------------------------

    /// Open a write transaction. Buffer any number of
    /// [`Transaction::insert`] / [`Transaction::remove`] operations, then
    /// [`Transaction::commit`] them as one batch: one epoch bump, one
    /// eviction of the union of affected components, one parallel re-sweep
    /// at the next read.
    pub fn begin(&mut self) -> Transaction<'_> {
        Transaction::new(self)
    }

    /// Insert (or replace) a named region.
    ///
    /// Thin wrapper over a one-operation transaction, kept for convenience;
    /// a loop of `insert` calls pays one epoch per call — batch them with
    /// [`TopoDatabase::begin`] instead.
    pub fn insert<S: Into<String>>(&mut self, name: S, region: Region) {
        let mut txn = self.begin();
        txn.insert(name, region);
        txn.commit();
    }

    /// Remove a region, returning it if present.
    ///
    /// Removing a name that does not exist is a complete no-op: no epoch
    /// bump, no component eviction. (Kept for convenience; implemented
    /// directly rather than through [`TopoDatabase::begin`] only because a
    /// buffered [`Transaction::remove`] cannot return the removed region —
    /// the epoch/eviction semantics are identical to a one-operation
    /// batch.)
    pub fn remove(&mut self, name: &str) -> Option<Region> {
        let out = self.instance.remove(name);
        if out.is_some() {
            self.invalidate(&[name]);
        }
        out
    }

    /// Invalidate the derived structures affected by a committed batch that
    /// changed `names`: start a new epoch, drop the snapshot, and evict the
    /// cached components containing any changed name.
    pub(crate) fn invalidate<S: AsRef<str>>(&mut self, names: &[S]) {
        self.epoch.fetch_add(1, Ordering::Relaxed);
        // `&mut self` gives exclusive access: no lock traffic, no poisoning.
        let cache = self.cache.get_mut().unwrap_or_else(std::sync::PoisonError::into_inner);
        cache.snapshot = None;
        cache.flat = None;
        cache
            .components
            .retain(|key, _| !key.iter().any(|n| names.iter().any(|c| c.as_ref() == n)));
    }

    /// A read guard on the cache (recovering from poisoning: the cache holds
    /// only derived data, always rebuildable from the instance).
    fn cache_read(&self) -> RwLockReadGuard<'_, Cache> {
        self.cache.read().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// A write guard on the cache (recovering from poisoning, see
    /// [`TopoDatabase::cache_read`]).
    fn cache_write(&self) -> RwLockWriteGuard<'_, Cache> {
        self.cache.write().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    // ---- instance accessors ---------------------------------------------

    /// The underlying spatial instance.
    pub fn instance(&self) -> &SpatialInstance {
        &self.instance
    }

    /// Region names in canonical order.
    pub fn names(&self) -> Vec<String> {
        self.instance.names().into_iter().map(String::from).collect()
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.instance.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.instance.is_empty()
    }

    // ---- read path ------------------------------------------------------

    /// Ensure the snapshot of the current epoch is cached: re-partition,
    /// re-sweep only the components invalidated since the last build
    /// (concurrently — they share nothing), and assemble the zero-copy
    /// global view over them.
    fn ensure_snapshot(&self, cache: &mut Cache) {
        if cache.snapshot.is_some() {
            return;
        }
        let groups = arrangement::partition_instance(&self.instance);
        let names = self.instance.names();
        let keys: Vec<Vec<String>> = groups
            .iter()
            .map(|g| g.region_indices.iter().map(|&i| names[i].to_string()).collect())
            .collect();
        // Sweep every cache-missing component, in parallel: components are
        // share-nothing work units, so a cold build (or a burst of misses
        // after a committed batch) uses all configured threads, while the
        // common one-miss incremental case takes the serial path.
        let missing: Vec<usize> =
            (0..groups.len()).filter(|&i| !cache.components.contains_key(&keys[i])).collect();
        if !missing.is_empty() {
            let threads = arrangement::parallel::configured_threads();
            let instance = &self.instance;
            // Share the thread budget between the component fan-out and each
            // component's own strip decomposition (a single big dirty
            // component gets the whole budget for its strips).
            let strip_budget = arrangement::strip::strip_budget(missing.len(), threads);
            let built = arrangement::parallel::map_indexed(missing.len(), threads, |j| {
                Arc::new(arrangement::assemble::build_group_component_budgeted(
                    instance,
                    &groups[missing[j]],
                    strip_budget,
                ))
            });
            self.component_rebuilds.fetch_add(missing.len() as u64, Ordering::Relaxed);
            for (j, component) in built.into_iter().enumerate() {
                cache.components.insert(keys[missing[j]].clone(), component);
            }
        }
        let components: Vec<Arc<ComponentComplex>> =
            keys.iter().map(|key| Arc::clone(&cache.components[key])).collect();
        // Prune entries whose component no longer exists (merged or split by
        // an update since they were built).
        cache.components.retain(|key, _| keys.contains(key));
        let global_names: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        self.complex_builds.fetch_add(1, Ordering::Relaxed);
        let view = Arc::new(GlobalComplexView::new(global_names, components));
        cache.snapshot = Some(Snapshot::new(self.epoch.load(Ordering::Relaxed), view));
    }

    /// The immutable [`Snapshot`] of the current epoch — the read half of
    /// the facade.
    ///
    /// Builds (or reuses) the zero-copy global view, then hands out a clone
    /// of the cached snapshot: a constant-time `Arc` bump. The snapshot is
    /// `Send + Sync` and keeps answering for its epoch however many batches
    /// are committed afterwards; call `snapshot()` again after a commit to
    /// observe the new epoch.
    ///
    /// Acquisition itself is concurrent: the database is `Sync`, the cache
    /// sits behind an [`RwLock`], and the warm path takes only a read lock —
    /// any number of threads can call `snapshot()` (and every other read)
    /// on a shared `&TopoDatabase` simultaneously. A cold call after a
    /// commit upgrades to the write lock; whichever caller wins rebuilds
    /// once and the rest reuse its snapshot.
    pub fn snapshot(&self) -> Snapshot {
        if let Some(snapshot) = &self.cache_read().snapshot {
            return snapshot.clone();
        }
        let mut cache = self.cache_write();
        self.ensure_snapshot(&mut cache);
        cache.snapshot.as_ref().expect("snapshot just ensured").clone()
    }

    /// The zero-copy global complex view of the current instance — shared
    /// behind an [`Arc`]. Equivalent to `self.snapshot().complex_view()`.
    pub fn complex_view(&self) -> Arc<GlobalComplexView> {
        self.snapshot().complex_view()
    }

    /// The flat cell complex of the current instance.
    ///
    /// This materializes (and caches) a deep copy of every cell out of the
    /// component sub-complexes — `O(total cells)`. Prefer
    /// [`TopoDatabase::snapshot`] / [`TopoDatabase::complex_view`] unless a
    /// caller specifically needs the flat [`CellComplex`] representation;
    /// all of this facade's own reads go through the view.
    pub fn cell_complex(&self) -> Arc<CellComplex> {
        if let Some(flat) = &self.cache_read().flat {
            return Arc::clone(flat);
        }
        let mut cache = self.cache_write();
        self.ensure_snapshot(&mut cache);
        if cache.flat.is_none() {
            let snapshot = cache.snapshot.as_ref().expect("snapshot just ensured");
            cache.flat = Some(Arc::new(snapshot.view_ref().to_cell_complex()));
        }
        Arc::clone(cache.flat.as_ref().expect("flat complex just computed"))
    }

    /// The topological invariant `T_I` of the current instance, shared
    /// zero-copy. Thin wrapper over [`Snapshot::invariant`]; repeated calls
    /// between two commits return the same [`Arc`].
    pub fn invariant(&self) -> Arc<Invariant> {
        self.snapshot().invariant()
    }

    /// The cached component sub-complexes backing the current complex, as
    /// `(region names, component)` pairs in partition order.
    ///
    /// Builds the view if needed. The returned [`Arc`]s are clones of the
    /// cache entries: a component untouched by the updates between two calls
    /// is returned pointer-identical (`Arc::ptr_eq`), which is the
    /// observable guarantee of incremental maintenance.
    pub fn component_complexes(&self) -> Vec<(Vec<String>, Arc<ComponentComplex>)> {
        {
            // Warm path: a cached snapshot means the component map is
            // current too, so a read lock suffices.
            let cache = self.cache_read();
            if cache.snapshot.is_some() {
                return cache.components.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect();
            }
        }
        let mut cache = self.cache_write();
        self.ensure_snapshot(&mut cache);
        cache.components.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect()
    }

    /// How many times this database has built (assembled) its global cell
    /// complex.
    ///
    /// Diagnostic for cache effectiveness: any sequence of reads between two
    /// commits should increase this by at most one, whatever mix of
    /// snapshots, relations, queries or invariant calls it makes — and a
    /// committed batch of `k` mutations still only adds one.
    pub fn complex_build_count(&self) -> u64 {
        self.complex_builds.load(Ordering::Relaxed)
    }

    /// How many component sub-complexes this database has swept from
    /// scratch.
    ///
    /// Diagnostic for *incremental* cache effectiveness: a commit followed
    /// by a read re-sweeps only the components whose geometry interacts with
    /// the changed regions — on a multi-cluster map this stays proportional
    /// to the batch while [`TopoDatabase::complex_build_count`] grows by
    /// one, however large the rest of the map is.
    pub fn component_rebuild_count(&self) -> u64 {
        self.component_rebuilds.load(Ordering::Relaxed)
    }

    /// The current update epoch: the number of *effective* committed batches
    /// so far (single-mutation [`TopoDatabase::insert`] / successful
    /// [`TopoDatabase::remove`] calls count as one-operation batches; a
    /// commit that changes nothing does not advance the epoch). Cached
    /// derived structures are always consistent with the latest epoch at the
    /// time they are read; [`Snapshot::epoch`] records which epoch a
    /// snapshot belongs to.
    pub fn update_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Relaxed)
    }

    // ---- thin read wrappers (prefer Snapshot) ---------------------------

    /// The thematic relational database `thematic(I)` over the schema `Th`.
    /// Thin wrapper over [`Snapshot::thematic`].
    pub fn thematic(&self) -> relstore::Database {
        self.snapshot().thematic()
    }

    /// The 4-intersection relation between two named regions. Thin wrapper
    /// over [`Snapshot::relation`].
    pub fn relation(&self, a: &str, b: &str) -> Result<Relation4, TopoDbError> {
        self.snapshot().relation(a, b)
    }

    /// All pairwise relations, in name order. Thin wrapper over
    /// [`Snapshot::relation_matrix`].
    pub fn relation_matrix(&self) -> Vec<(String, String, Relation4)> {
        self.snapshot().relation_matrix()
    }

    /// Is this database topologically equivalent (homeomorphic) to another?
    /// Decided via invariant isomorphism (Theorem 3.4).
    pub fn homeomorphic_to(&self, other: &TopoDatabase) -> bool {
        if self.instance.names() != other.instance.names() {
            return false;
        }
        invariant::isomorphic(&self.invariant(), &other.invariant())
    }

    /// Evaluate a region-based query and collapse the answer to a `bool`.
    ///
    /// Thin wrapper over the snapshot read path: sentences return their
    /// truth value; a formula with free name variables returns whether
    /// *some* satisfying assignment exists (evaluated as the existential
    /// closure, which stops at the first witness instead of enumerating
    /// every row). Use [`Snapshot::query`] to obtain the bindings
    /// themselves.
    pub fn query(&self, text: &str) -> Result<bool, TopoDbError> {
        self.query_prepared_bool(&PreparedQuery::compile(text)?)
    }

    /// Evaluate an already-parsed query, collapsed to `bool` like
    /// [`TopoDatabase::query`].
    pub fn query_formula(&self, formula: &query::Formula) -> Result<bool, TopoDbError> {
        self.query_prepared_bool(&PreparedQuery::from_formula(formula.clone())?)
    }

    fn query_prepared_bool(&self, prepared: &PreparedQuery) -> Result<bool, TopoDbError> {
        if prepared.is_boolean() {
            Ok(self.snapshot().evaluate(prepared)?.holds())
        } else {
            let closed = prepared.existential_closure();
            self.snapshot().evaluator().eval(&closed).map_err(TopoDbError::from)
        }
    }

    /// Validate the database's own invariant (always valid; exposed mainly so
    /// applications can validate externally modified invariants the same
    /// way — Theorem 3.8).
    pub fn validate_invariant(inv: &Invariant) -> Vec<invariant::ValidationError> {
        invariant::validate(inv)
    }

    /// A human-readable summary of the database and its derived structures:
    /// region count, invariant cell counts, the interaction components
    /// backing the complex with their per-component cell counts, and which
    /// representation(s) of the global complex are currently cached (the
    /// zero-copy view, plus the flat deep copy if a caller materialized
    /// one).
    pub fn summary(&self) -> String {
        let snapshot = self.snapshot();
        let inv = snapshot.invariant();
        let view = snapshot.complex_view();
        let per_component: Vec<String> = view
            .component_cell_counts()
            .iter()
            .map(|(v, e, f)| format!("{}", v + e + f))
            .collect();
        let cached = if self.cache_read().flat.is_some() {
            "view + flat copy"
        } else {
            "view"
        };
        format!(
            "{} region(s); invariant: {} vertices, {} edges, {} faces; {} component(s), cells per component: [{}]; cached complex: {}",
            self.len(),
            inv.vertex_count(),
            inv.edge_count(),
            inv.face_count(),
            view.component_count(),
            per_component.join(", "),
            cached
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_core::fixtures;

    #[test]
    fn facade_round_trip() {
        let mut db = TopoDatabase::from_instance(fixtures::fig_1c());
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert_eq!(db.relation("A", "B").unwrap(), Relation4::Overlap);
        assert_eq!(db.query("overlap(A, B)"), Ok(true));
        assert_eq!(db.query("disjoint(A, B)"), Ok(false));
        assert!(db.query("nonsense(").is_err());
        assert!(db.relation("A", "Z").is_err());
        assert!(db.summary().contains("2 region(s)"));

        // Updates invalidate the cache.
        db.insert("C", spatial_core::region::Region::rect_from_ints(20, 20, 24, 24));
        assert_eq!(db.len(), 3);
        assert_eq!(db.relation("A", "C").unwrap(), Relation4::Disjoint);
        assert!(db.remove("C").is_some());
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn homeomorphism_between_databases() {
        let a = TopoDatabase::from_instance(fixtures::fig_1c());
        let b = TopoDatabase::from_instance(fixtures::fig_1c().translated(100, 100));
        let d = TopoDatabase::from_instance(fixtures::fig_1d());
        assert!(a.homeomorphic_to(&b));
        assert!(!a.homeomorphic_to(&d));
        // The same comparisons through snapshots.
        assert!(a.snapshot().homeomorphic_to(&b.snapshot()));
        assert!(!a.snapshot().homeomorphic_to(&d.snapshot()));
    }

    #[test]
    fn derived_structures_are_cached_and_shared() {
        let mut db = TopoDatabase::from_instance(fixtures::fig_1c());
        assert_eq!(db.complex_build_count(), 0, "nothing built before first use");

        // Any mix of reads performs exactly one construction...
        let c1 = db.cell_complex();
        let matrix = db.relation_matrix();
        assert_eq!(matrix.len(), 1);
        let _ = db.relation("A", "B").unwrap();
        let _ = db.query("overlap(A, B)").unwrap();
        let inv1 = db.invariant();
        let _ = db.thematic();
        let _ = db.summary();
        let snap = db.snapshot();
        assert_eq!(db.complex_build_count(), 1, "reads must reuse the cached complex");
        assert_eq!(snap.epoch(), 0);

        // ...and hands out the same shared allocation, not deep copies.
        let c2 = db.cell_complex();
        assert!(Arc::ptr_eq(&c1, &c2), "cell_complex() must return the cached Arc");
        let inv2 = db.invariant();
        assert!(Arc::ptr_eq(&inv1, &inv2), "invariant() must return the cached Arc");
        let inv3 = snap.invariant();
        assert!(Arc::ptr_eq(&inv1, &inv3), "snapshot shares the database's invariant");

        // Updates invalidate: exactly one rebuild serves the next burst.
        db.insert("C", spatial_core::region::Region::rect_from_ints(20, 20, 24, 24));
        let _ = db.relation_matrix();
        let c3 = db.cell_complex();
        let _ = db.relation("A", "C").unwrap();
        assert_eq!(db.complex_build_count(), 2);
        assert!(!Arc::ptr_eq(&c1, &c3), "update must produce a fresh complex");
        // The pre-update Arc is still alive and unchanged (snapshot isolation
        // for long-lived readers).
        assert_eq!(c1.region_names().len(), 2);
        assert_eq!(c3.region_names().len(), 3);
        assert_eq!(snap.len(), 2, "pre-update snapshot still answers for its epoch");
    }

    #[test]
    fn summary_reports_components_and_cached_representation() {
        let db = TopoDatabase::from_instance(fixtures::nested_three());
        let s = db.summary();
        // Component structure: nested_three partitions into 3 one-region
        // components of 3 cells each (1 vertex + 1 loop edge + 1 bounded
        // face).
        assert!(s.contains("3 region(s)"), "{s}");
        assert!(s.contains("3 component(s)"), "{s}");
        assert!(s.contains("cells per component: [3, 3, 3]"), "{s}");
        // Only the zero-copy view has been assembled so far.
        assert!(s.contains("cached complex: view"), "{s}");
        assert!(!s.contains("flat copy"), "{s}");
        // Materializing the flat complex is reflected in the summary.
        let _ = db.cell_complex();
        let s2 = db.summary();
        assert!(s2.contains("cached complex: view + flat copy"), "{s2}");
    }

    #[test]
    fn view_reuses_untouched_components_pointer_identically() {
        let mut db = TopoDatabase::from_instance(fixtures::nested_three());
        let v1 = db.complex_view();
        let v1b = db.complex_view();
        assert!(Arc::ptr_eq(&v1, &v1b), "complex_view() must return the cached Arc");

        // An update to a separated region re-assembles the view but reuses
        // every untouched component allocation inside it.
        db.insert("D", spatial_core::region::Region::rect_from_ints(500, 500, 504, 504));
        let v2 = db.complex_view();
        assert!(!Arc::ptr_eq(&v1, &v2), "update must produce a fresh view");
        let before: Vec<_> = v1.components().to_vec();
        let reused = v2
            .components()
            .iter()
            .filter(|c| before.iter().any(|b| Arc::ptr_eq(b, c)))
            .count();
        assert_eq!(reused, before.len(), "all pre-update components are shared by the new view");
        assert_eq!(v2.component_count(), before.len() + 1);
    }

    #[test]
    fn thematic_and_validation() {
        let db = TopoDatabase::from_instance(fixtures::nested_three());
        let th = db.thematic();
        assert_eq!(th.relation("Regions").unwrap().len(), 3);
        assert!(TopoDatabase::validate_invariant(&db.invariant()).is_empty());
    }
}
