//! # topodb
//!
//! A topological spatial database, reproducing the system described in
//! *"Topological Queries in Spatial Databases"* (Papadimitriou, Suciu, Vianu;
//! PODS 1996 / JCSS 1999).
//!
//! [`TopoDatabase`] is the user-facing entry point, designed around a
//! **read/write split**:
//!
//! * **Reads** go through an immutable [`Snapshot`]
//!   ([`TopoDatabase::snapshot`]): an all-`Arc`, `Send + Sync`, cheap-to-clone
//!   handle over one epoch of the database that owns the assembled zero-copy
//!   complex view and answers 4-intersection relations, region-based
//!   queries, the topological invariant `T_I` (Section 3), homeomorphism
//!   tests (Theorem 3.4) and the thematic relational summary `thematic(I)`
//!   (Corollary 3.7) — from any number of threads concurrently. Acquiring a
//!   snapshot is **wait-free** on the default epoch-chain backend: one
//!   atomic pointer load plus an `Arc` refcount bump, never a lock.
//! * **Writes** go through a [`Transaction`] ([`TopoDatabase::begin`], or
//!   [`TopoDatabase::begin_shared`] from a shared reference): any number of
//!   inserts/removals commit as **one** batch — the commit re-sweeps only
//!   the affected components (outside any lock, against its base epoch) and
//!   publishes a complete new epoch with a compare-exchange; commits
//!   touching disjoint components build concurrently.
//! * **Queries** compile once into a [`PreparedQuery`]
//!   (`query::PreparedQuery::compile`) and run against any snapshot of any
//!   epoch; formulas with free name variables are *set-returning* — they
//!   yield [`QueryOutput::Bindings`], the satisfying name assignments, in
//!   the paper's `FO(Region, Region')` syntax (Section 4, evaluated over the
//!   cell complex as in Section 7).
//!
//! The individual crates (`spatial-core`, `arrangement`, `invariant`,
//! `relations`, `relstore`, `query`) are re-exported for direct use.
//!
//! ## Example
//!
//! ```
//! use topodb::{QueryOutput, TopoDatabase};
//! use topodb::query::PreparedQuery;
//! use topodb::spatial_core::prelude::*;
//!
//! let mut db = TopoDatabase::new();
//!
//! // Write path: one transaction, one epoch bump for the whole batch.
//! let mut txn = db.begin();
//! txn.insert("Lake", Region::polygon_from_ints(&[(0, 0), (8, 0), (8, 6), (0, 6)]).unwrap());
//! txn.insert("Park", Region::rect_from_ints(5, 2, 12, 9));
//! txn.commit();
//!
//! // Read path: an immutable, Send + Sync snapshot.
//! let snap = db.snapshot();
//! assert_eq!(snap.relation("Lake", "Park").unwrap().name(), "overlap");
//! assert_eq!(
//!     snap.query("exists r . subset(r, Lake) and subset(r, Park)").unwrap(),
//!     QueryOutput::Bool(true)
//! );
//!
//! // Prepared, binding-producing query: which regions overlap the lake?
//! let q = PreparedQuery::compile("overlap(ext(x), Lake)").unwrap();
//! let rows = snap.evaluate(&q).unwrap();
//! assert_eq!(rows.bindings().unwrap()[0]["x"], "Park");
//! ```

// Unsafe code is confined to `epoch::swap` (the raw-pointer core of the
// atomic epoch-head slot); every other module is checked by this deny.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub use arrangement;
pub use invariant;
pub use query;
pub use relations;
pub use relstore;
pub use spatial_core;
pub use wal;

mod durability;
mod epoch;
mod error;
mod snapshot;
mod transaction;

pub use durability::{Clock, RetryPolicy, StorageOptions, SystemClock};
pub use error::{ErrorClass, TopoDbError};
pub use query::{PreparedQuery, QueryOutput};
pub use snapshot::Snapshot;
pub use transaction::{CommitSummary, Transaction};
pub use wal::{SyncPolicy, WalConfig};

use arrangement::{CellComplex, ComponentComplex, GlobalComplexView};
use durability::Durability;
use epoch::{BuildCounters, EpochChain};
use invariant::Invariant;
use relations::Relation4;
use spatial_core::instance::SpatialInstance;
use spatial_core::region::Region;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::{Arc, PoisonError, RwLock, RwLockReadGuard, RwLockWriteGuard};
use transaction::Op;

/// A topological spatial database: named regions plus the derived structures
/// of the paper (cell complex, invariant, thematic relational summary),
/// computed lazily, shared zero-copy behind [`Arc`]s, and maintained
/// *incrementally* across updates.
///
/// The public surface is split into a write path and a read path:
///
/// * [`TopoDatabase::begin`] (or [`TopoDatabase::begin_shared`] from `&self`)
///   opens a [`Transaction`]; buffered `insert`/`remove` operations commit
///   as one batch that re-sweeps only the affected components and starts
///   **one** new epoch.
/// * [`TopoDatabase::snapshot`] returns the [`Snapshot`] of the current
///   epoch — an immutable, `Send + Sync`, cheaply clonable read handle that
///   owns the assembled view and every derived read (relations, queries,
///   invariant, thematic). Long-lived snapshots keep answering for their
///   epoch after later commits (snapshot isolation for readers).
///
/// The inherent read methods ([`TopoDatabase::relation`],
/// [`TopoDatabase::query`], [`TopoDatabase::invariant`], …) and the
/// single-mutation [`TopoDatabase::insert`] / [`TopoDatabase::remove`] are
/// retained as thin wrappers over those two paths for convenience and
/// backward compatibility — new code should prefer snapshots and
/// transactions.
///
/// ## Concurrency model
///
/// The default backend is an **epoch chain** (`topodb::epoch`): a
/// singly-linked list of immutable, fully-built epochs published through an
/// atomic pointer.
///
/// * **Readers are wait-free.** [`TopoDatabase::snapshot`] is one atomic
///   load of the epoch head plus an `Arc` refcount bump — no read lock, no
///   write lock, and no rebuild: a published epoch is built *before* it
///   becomes visible, so a reader never pays for (or waits on) a writer's
///   re-sweep. The database is `Sync`; a service front end shares one
///   `&TopoDatabase` across all of its worker threads.
/// * **Writers build outside any lock.** A commit registers its base epoch
///   under a small writers-only mutex (the registry also governs how far
///   back the chain must stay walkable), applies its operations to a copy
///   of the base instance, re-sweeps **only** the components whose
///   region-name set meets a changed name — reusing every other
///   `Arc<ComponentComplex>` of the base pointer-identically, on the shared
///   worker pool — and then publishes the fully-built epoch with a
///   compare-exchange on the head.
/// * **Conflicts cost a re-assembly, not a rebuild.** If another commit
///   published first, the loser walks the chain from the new head to its
///   base to learn which names the intervening epochs changed, keeps every
///   component neither side invalidated (the new head's for its own
///   untouched keys, its own attempt's for keys the intervening commits
///   didn't touch), re-sweeps only the genuinely contested components, and
///   retries. Two transactions over disjoint components therefore *build
///   concurrently* and both publish after one compare-exchange each.
/// * **Reclamation is generation-counted.** A replaced head is retired, not
///   dropped: the atomic slot (`epoch::swap`) frees it only after both
///   reader-pin parities have been observed empty at generation flips after
///   the retirement, so a reader between its pointer load and its refcount
///   bump can never see a freed epoch. The `prev` chain is pruned down to
///   the oldest in-flight writer base after every publish, bounding the
///   list by writer concurrency rather than history.
///
/// The pre-chain `RwLock`-cache backend is kept as a **differential
/// oracle**: construct with
/// [`TopoDatabase::from_instance_with_epoch_chain`]`(…, false)` or set
/// `TOPODB_EPOCH_CHAIN=off` in the environment (read once per database
/// construction). It serves identical epochs, relation matrices and query
/// rows — the randomized interleaved schedules in
/// `crates/topodb/tests/epoch_chain.rs` hold the two backends equal — but
/// readers there serialize behind the cache lock and a commit's re-sweep
/// lands on the next reader. On the legacy path, lock poisoning is
/// recovered with [`PoisonError::into_inner`] at each acquisition: while
/// the write lock is held, the only fallible code runs *before* any state
/// is mutated (the pure op-application pass) or inserts only complete,
/// fully-built values (the component build), so a panicking writer can
/// never leave a torn cache behind.
///
/// ## Component reuse and epochs
///
/// The arrangement is built by the partition → per-component sweep →
/// assemble pipeline of the `arrangement` crate
/// ([`arrangement::build_components_with_reuse`]), and every epoch carries
/// its per-component sub-complexes (`Arc<ComponentComplex>`) keyed by the
/// component's region-name set. A committed batch that changes at least one
/// region starts a new *epoch*; components whose geometry now interacts
/// with a changed region surface as groups with a *new* name-set key (so
/// they are re-swept — concurrently, see [`arrangement::parallel`]), while
/// every unaffected group is reused pointer-identically. A batch of `k`
/// mutations therefore costs *one* re-sweep of the affected clusters and
/// *one* global re-assembly, not `k`.
///
/// The global complex is assembled *by view* ([`GlobalComplexView`]): the
/// epoch's `Arc<ComponentComplex>`es are composed behind a compact id
/// translation table in `O(components + cross-component nesting)`, with no
/// per-cell copying. The cost of a commit is therefore `O(affected
/// clusters)` re-sweeping plus an `O(components)` re-assembly — fully
/// proportional to the affected geometry — instead of a full
/// `O((n + k) log n)` re-sweep of the whole map.
///
/// Two counters pin the behavior down: [`TopoDatabase::complex_build_count`]
/// is the number of *assembled global complexes* built (any burst of reads
/// between two commits increases it by at most one), and
/// [`TopoDatabase::component_rebuild_count`] is the number of *component
/// sub-complexes* swept from scratch — the part that incremental maintenance
/// keeps proportional to the affected geometry rather than the map size.
/// [`TopoDatabase::publish_conflict_count`] counts epoch-chain publish
/// attempts that lost the head compare-exchange and retried.
///
/// ## Durability model
///
/// A database is in-memory by default; [`TopoDatabase::create`] and
/// [`TopoDatabase::open`] attach a **write-ahead log** (the `wal` crate)
/// rooted at a directory, after which every committed batch is persisted
/// as one checksummed record — epoch number, the insert/remove ops with
/// exact rational coordinates, the changed-name set — and the database
/// survives a crash.
///
/// * **Log-before-publish ordering.** On the epoch chain, a durable
///   commit's stage 3 serializes on the log's publish lock: it re-checks
///   that the head is still the attempt's base, appends the record, and
///   only then swaps the head. The check-under-lock makes the swap
///   infallible for the attempt that logged, so (a) a record reaches the
///   log strictly *before* the epoch it describes becomes visible to any
///   reader — a crash can lose an epoch nobody saw, never expose an epoch
///   nobody logged — and (b) a conflict-retried batch is logged exactly
///   once, on the attempt that wins; losing attempts discover the stale
///   head before appending anything. (On the legacy backend the cache
///   write lock provides the same ordering trivially: the record is
///   appended after the batch's effect is computed and before any state
///   is overwritten.) Publishes serialize; builds stay concurrent.
/// * **Sync policies** ([`SyncPolicy`]): `PerCommit` fsyncs every record
///   (a returned commit survives power loss — and costs a disk flush per
///   commit); `Interval` group-commits, fsyncing at most once per window
///   (bounded loss under power failure, near in-memory commit latency);
///   `None` never fsyncs (a process crash loses nothing — the page cache
///   survives it — only a machine crash can drop the tail).
/// * **Failure taxonomy and retry policy.** A failed append is classified
///   ([`ErrorClass`]) before anything else happens:
///   *transient* failures (`EINTR`-style interruptions, including a torn
///   append — the log trims its tail back to the last record boundary
///   before the retry touches the file) are retried in place with
///   exponential backoff, up to [`RetryPolicy::max_attempts`] attempts
///   total (default 4, base backoff 1 ms, doubling; the backoff sleeps on
///   an injectable [`Clock`]); *fatal* failures (`ENOSPC`, failed fsyncs —
///   which may have dropped the unsynced tail, so they are never retried —
///   device errors) and *corrupting* ones (checksum-impossible bytes) are
///   not retried at all. A commit whose append ultimately fails publishes
///   nothing: readers stay on the previous epoch, exactly the state a
///   reopen of the log would recover.
/// * **Read-only degraded mode.** The first unsurvivable failure — fatal,
///   corrupting, or a transient one that exhausted its attempt budget —
///   transitions the database to **read-only degraded mode**, permanently
///   for the life of the handle. Snapshots and queries keep serving the
///   last published epoch (reads never touch the log); every subsequent
///   commit or checkpoint fails fast with [`TopoDbError::Degraded`]
///   carrying the *root cause* (the first failure, not the latest
///   rejection). Use [`Transaction::try_commit`] to observe the typed
///   error; the panicking [`Transaction::commit`] convenience wrapper is
///   unchanged for in-memory use. [`TopoDatabase::health`] reports the
///   degraded flag, its root cause, and the retry/degradation counters.
/// * **Checkpoint/truncation invariant.** Periodically the full instance
///   is snapshotted into a checkpoint file (temp file + atomic rename),
///   the log rotates to a fresh segment, and all older segments and
///   checkpoints are deleted. Recovery = newest checkpoint + replay of
///   the segments after it, so replay work and disk usage are bounded by
///   the checkpoint cadence, not by history; the trade is that
///   [`TopoDatabase::open_at`] can only reach epochs at or after the
///   newest checkpoint (it reports the recoverable range otherwise).
/// * **Recovery** replays the log through the same op-application path
///   live commits use (cross-checking each record's logged
///   changed-name set), then rebuilds derived structures on first read
///   through the ordinary build pipeline. A torn final record — the state
///   an interrupted append leaves — is truncated away silently; any other
///   corruption (including a checksum failure mid-log) fails the open
///   loudly with the offending file and byte offset.
///
/// The storage backend itself is pluggable ([`wal::Vfs`]):
/// [`TopoDatabase::create_with_storage`] / [`TopoDatabase::open_with_storage`]
/// take [`StorageOptions`] bundling the log config, the retry policy, the
/// backend (default: the real filesystem) and the backoff clock. The
/// deterministic in-memory [`wal::SimFs`] with a seeded [`wal::FaultPlan`]
/// is how the chaos suite drives every failure path above on demand.
///
/// Setting `TOPODB_WAL=on` attaches a throwaway temp-dir log (sync policy
/// from `TOPODB_WAL_SYNC`, default `none`; `TOPODB_VFS=sim` backs it with
/// an in-memory [`wal::SimFs`] instead of a temp dir) to every database
/// constructed without an explicit path — CI runs the entire suite that
/// way to keep the logging protocol in every code path's loop.
pub struct TopoDatabase {
    backend: Backend,
    counters: BuildCounters,
    durability: Option<Durability>,
}

/// A point-in-time report on a database's storage health, from
/// [`TopoDatabase::health`]. See the "Durability model" notes on
/// [`TopoDatabase`] for the taxonomy behind the counters.
#[derive(Clone, Debug)]
#[non_exhaustive]
pub struct Health {
    /// Which backend serves reads: `"epoch-chain"` or `"legacy-rwlock"`.
    pub backend: &'static str,
    /// The current update epoch.
    pub epoch: u64,
    /// Is a write-ahead log attached?
    pub durable: bool,
    /// `Some(root cause)` if the database has degraded to read-only: the
    /// first storage failure that proved unsurvivable. `None` while
    /// healthy (always `None` for in-memory databases).
    pub degraded: Option<wal::WalError>,
    /// Transient storage failures absorbed by retrying (each retry counts
    /// once, so one append surviving two `EINTR`s adds two).
    pub transient_retries: u64,
    /// Operations whose transient failures exhausted the attempt budget
    /// (each such exhaustion degraded the database, or found it degraded).
    pub retries_exhausted: u64,
    /// Commits/checkpoints rejected fast because the database was already
    /// degraded.
    pub degraded_commit_rejections: u64,
    /// Acknowledged commits whose *post-append* housekeeping (periodic
    /// checkpoint or segment rotation) failed. The commit itself is
    /// durable; non-transient housekeeping failures also degrade.
    pub maintenance_errors: u64,
    /// Healthy→degraded transitions: 0 or 1 (degradation is permanent for
    /// the life of the handle).
    pub degrade_events: u64,
    /// Directory-fsync failures downgraded to a warning after checkpoint
    /// publication (see the `wal` crate's failure model).
    pub dir_sync_downgrades: u64,
    /// The log's head epoch (`None` for in-memory databases). Equals
    /// [`Health::epoch`] unless commits are currently in flight.
    pub wal_head_epoch: Option<u64>,
    /// The epoch of the newest on-log checkpoint — the oldest epoch
    /// [`TopoDatabase::open_at`] can still reach (`None` for in-memory
    /// databases).
    pub last_checkpoint_epoch: Option<u64>,
}

enum Backend {
    /// The default: wait-free readers over the epoch chain.
    Chain(EpochChain),
    /// The pre-chain `RwLock`-cache implementation, kept as a differential
    /// oracle (`TOPODB_EPOCH_CHAIN=off`).
    Legacy(RwLock<LegacyState>),
}

/// The legacy backend's entire mutable state under one lock: the instance,
/// the epoch counter and the derived-structure cache invalidate together.
struct LegacyState {
    instance: Arc<SpatialInstance>,
    epoch: u64,
    /// The snapshot of the current epoch, if a read has built it.
    snapshot: Option<Snapshot>,
    /// The flat deep-copied complex, materialized only via
    /// [`TopoDatabase::cell_complex`].
    flat: Option<Arc<CellComplex>>,
    /// Component sub-complexes surviving across updates, keyed by the
    /// component's sorted region-name set.
    components: BTreeMap<Vec<String>, Arc<ComponentComplex>>,
}

/// Should a database constructed without an explicit backend choice use the
/// epoch chain? `TOPODB_EPOCH_CHAIN=0|off|false|legacy|rwlock`
/// (case-insensitive) selects the legacy path; anything else — including
/// unset — the chain.
fn epoch_chain_enabled_by_env() -> bool {
    match std::env::var("TOPODB_EPOCH_CHAIN") {
        Ok(v) => {
            let v = v.trim().to_ascii_lowercase();
            !matches!(v.as_str(), "0" | "off" | "false" | "legacy" | "rwlock")
        }
        Err(_) => true,
    }
}

impl Default for TopoDatabase {
    fn default() -> Self {
        TopoDatabase::new()
    }
}

impl TopoDatabase {
    /// An empty database (backend chosen by `TOPODB_EPOCH_CHAIN`, chain by
    /// default).
    pub fn new() -> Self {
        TopoDatabase::from_instance(SpatialInstance::new())
    }

    /// Build a database from an existing instance (backend chosen by
    /// `TOPODB_EPOCH_CHAIN`, chain by default).
    pub fn from_instance(instance: SpatialInstance) -> Self {
        TopoDatabase::from_instance_with_epoch_chain(instance, epoch_chain_enabled_by_env())
    }

    /// Build a database from an existing instance with an explicit backend
    /// choice: `true` for the epoch chain, `false` for the legacy
    /// `RwLock`-cache oracle. The backend environment variable is not
    /// consulted — this is how the differential tests and benches hold
    /// both backends side-by-side in one process. (`TOPODB_WAL=on` still
    /// attaches its throwaway log, so the durability protocol is exercised
    /// on whichever backend is being tested.)
    pub fn from_instance_with_epoch_chain(instance: SpatialInstance, epoch_chain: bool) -> Self {
        let durability =
            if durability::wal_enabled_by_env() { durability::ephemeral(&instance) } else { None };
        TopoDatabase::assemble(instance, 0, epoch_chain, durability)
    }

    /// The one true constructor: every public way of building a database
    /// funnels through here with the recovered (or initial) instance, the
    /// epoch it represents, the backend choice, and the log attachment.
    fn assemble(
        instance: SpatialInstance,
        epoch: u64,
        epoch_chain: bool,
        durability: Option<Durability>,
    ) -> Self {
        let backend = if epoch_chain {
            Backend::Chain(EpochChain::new_at(Arc::new(instance), epoch))
        } else {
            Backend::Legacy(RwLock::new(LegacyState {
                instance: Arc::new(instance),
                epoch,
                snapshot: None,
                flat: None,
                components: BTreeMap::new(),
            }))
        };
        TopoDatabase { backend, counters: BuildCounters::default(), durability }
    }

    // ---- durable constructors -------------------------------------------

    /// Create a durable database at `dir` holding `instance` as its epoch
    /// 0, with the default log configuration ([`SyncPolicy::PerCommit`]:
    /// every commit is fsynced). Fails if `dir` already holds a database.
    ///
    /// See the "Durability model" section above for the protocol.
    pub fn create(dir: impl AsRef<Path>, instance: SpatialInstance) -> Result<Self, TopoDbError> {
        TopoDatabase::create_with_config(dir, instance, WalConfig::default())
    }

    /// [`TopoDatabase::create`] with an explicit log configuration (sync
    /// policy, segment rotation threshold, checkpoint cadence).
    pub fn create_with_config(
        dir: impl AsRef<Path>,
        instance: SpatialInstance,
        config: WalConfig,
    ) -> Result<Self, TopoDbError> {
        TopoDatabase::create_with_storage(dir, instance, StorageOptions::from_wal_config(config))
    }

    /// [`TopoDatabase::create`] with full control over storage: the log
    /// configuration, the transient-failure retry policy, the storage
    /// backend (a [`wal::Vfs`] — the real filesystem by default, or e.g. a
    /// fault-injecting [`wal::SimFs`]), and the retry-backoff clock.
    pub fn create_with_storage(
        dir: impl AsRef<Path>,
        instance: SpatialInstance,
        options: StorageOptions,
    ) -> Result<Self, TopoDbError> {
        let StorageOptions { wal: config, retry, vfs, clock } = options;
        let w = wal::Wal::create_with_vfs(vfs, dir.as_ref(), 0, &instance, config)?;
        Ok(TopoDatabase::assemble(
            instance,
            0,
            epoch_chain_enabled_by_env(),
            Some(Durability::with_policy(w, retry, clock)),
        ))
    }

    /// Reopen the durable database at `dir`: recover the newest checkpoint
    /// plus the log tail (truncating a torn final record, if the last run
    /// crashed mid-append), replay it through the same op-application path
    /// live commits use, and resume accepting commits — which continue the
    /// epoch numbering and the log exactly where the crash left them.
    ///
    /// Corruption that is *not* a torn tail — a checksum failure mid-log,
    /// a missing segment — fails loudly with the offending file and byte
    /// offset in the [`TopoDbError::Durability`] error.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, TopoDbError> {
        TopoDatabase::open_with_config(dir, WalConfig::default())
    }

    /// [`TopoDatabase::open`] with an explicit log configuration.
    pub fn open_with_config(
        dir: impl AsRef<Path>,
        config: WalConfig,
    ) -> Result<Self, TopoDbError> {
        TopoDatabase::open_with_storage(dir, StorageOptions::from_wal_config(config))
    }

    /// [`TopoDatabase::open`] with full control over storage — see
    /// [`TopoDatabase::create_with_storage`].
    pub fn open_with_storage(
        dir: impl AsRef<Path>,
        options: StorageOptions,
    ) -> Result<Self, TopoDbError> {
        let StorageOptions { wal: config, retry, vfs, clock } = options;
        let (w, recovery) = wal::Wal::open_with_vfs(vfs, dir.as_ref(), config)?;
        let instance = durability::replay(&recovery.checkpoint_instance, &recovery.records)?;
        Ok(TopoDatabase::assemble(
            instance,
            recovery.head_epoch(),
            epoch_chain_enabled_by_env(),
            Some(Durability::with_policy(w, retry, clock)),
        ))
    }

    /// Point-in-time reopen: reconstruct the database exactly as it was at
    /// `epoch`, replaying the log only that far. Any epoch from the newest
    /// checkpoint through the head is reachable; outside that range the
    /// error reports what the log still covers.
    ///
    /// The returned database is **detached**: it does not hold the log (so
    /// it can coexist with a live [`TopoDatabase::open`] of the same
    /// directory, and several `open_at` histories can coexist with each
    /// other), and commits made to it are in-memory only — it is a
    /// read-mostly time-travel view, not a fork of the durable history.
    pub fn open_at(dir: impl AsRef<Path>, epoch: u64) -> Result<Self, TopoDbError> {
        let recovery = wal::Wal::read(dir.as_ref())?;
        let records = recovery.records_up_to(epoch)?;
        let instance = durability::replay(&recovery.checkpoint_instance, records)?;
        Ok(TopoDatabase::assemble(instance, epoch, epoch_chain_enabled_by_env(), None))
    }

    /// Is a write-ahead log attached (via [`TopoDatabase::create`],
    /// [`TopoDatabase::open`], or `TOPODB_WAL=on`)?
    pub fn durable(&self) -> bool {
        self.durability.is_some()
    }

    /// A point-in-time health report: which backend is serving, whether a
    /// log is attached, whether the database has degraded to read-only
    /// (and why), and the retry/degradation counters. Cheap — a handful of
    /// relaxed atomic loads — and callable from any thread, degraded or
    /// not (health is a read).
    pub fn health(&self) -> Health {
        let (degraded, counters) = match &self.durability {
            Some(d) => (d.degraded_cause(), Some(&d.counters)),
            None => (None, None),
        };
        let load = |f: fn(&durability::DurabilityCounters) -> &std::sync::atomic::AtomicU64| {
            counters.map_or(0, |c| f(c).load(Ordering::Relaxed))
        };
        Health {
            backend: if self.epoch_chain_enabled() { "epoch-chain" } else { "legacy-rwlock" },
            epoch: self.update_epoch(),
            durable: self.durability.is_some(),
            degraded,
            transient_retries: load(|c| &c.transient_retries),
            retries_exhausted: load(|c| &c.retries_exhausted),
            degraded_commit_rejections: load(|c| &c.degraded_rejections),
            maintenance_errors: load(|c| &c.maintenance_errors),
            degrade_events: load(|c| &c.degrade_events),
            dir_sync_downgrades: self
                .durability
                .as_ref()
                .map_or(0, |d| d.wal().stats().dir_sync_downgrades()),
            wal_head_epoch: self.durability.as_ref().map(|d| d.wal().head_epoch()),
            last_checkpoint_epoch: self.durability.as_ref().map(|d| d.wal().checkpoint_epoch()),
        }
    }

    /// Force a checkpoint of the current epoch: snapshot the instance,
    /// rotate the log, truncate everything older. No-op if no log is
    /// attached. (Checkpoints also happen automatically every
    /// [`WalConfig::checkpoint_every_records`] commits.)
    ///
    /// Subject to the same retry/degradation discipline as commits:
    /// transient failures are retried per the [`RetryPolicy`], anything
    /// unsurvivable degrades the database and surfaces as
    /// [`TopoDbError::Degraded`].
    pub fn checkpoint(&self) -> Result<(), TopoDbError> {
        let Some(d) = &self.durability else { return Ok(()) };
        // Serialize with commit publication so the checkpointed instance
        // is exactly the one at the log's head epoch (a commit landing
        // between the instance read and the checkpoint write would
        // otherwise snapshot a stale instance under a newer epoch).
        match &self.backend {
            Backend::Chain(chain) => {
                let _publishing = d.publish_lock.lock().unwrap_or_else(PoisonError::into_inner);
                d.checkpoint(&chain.head().instance)
            }
            Backend::Legacy(lock) => {
                let st = write(lock);
                d.checkpoint(&st.instance)
            }
        }
    }

    /// Is this database running on the epoch chain (`true`) or the legacy
    /// `RwLock` cache (`false`)?
    pub fn epoch_chain_enabled(&self) -> bool {
        matches!(self.backend, Backend::Chain(_))
    }

    // ---- write path -----------------------------------------------------

    /// Open a write transaction. Buffer any number of
    /// [`Transaction::insert`] / [`Transaction::remove`] operations, then
    /// [`Transaction::commit`] them as one batch: one epoch bump, one
    /// re-sweep of the union of affected components.
    ///
    /// Taking `&mut self` makes this transaction the only writer by
    /// construction; concurrent writers should use
    /// [`TopoDatabase::begin_shared`].
    pub fn begin(&mut self) -> Transaction<'_> {
        Transaction::new(self)
    }

    /// Open a write transaction from a shared reference, so any number of
    /// threads can commit concurrently against one `&TopoDatabase`.
    ///
    /// On the epoch-chain backend, concurrent commits over disjoint
    /// components build their epochs concurrently and serialize only at the
    /// publish compare-exchange; on the legacy backend they serialize on
    /// the cache write lock. Each commit is atomic either way: readers see
    /// every epoch fully built.
    pub fn begin_shared(&self) -> Transaction<'_> {
        Transaction::new(self)
    }

    /// Insert (or replace) a named region.
    ///
    /// Thin wrapper over a one-operation transaction, kept for convenience;
    /// a loop of `insert` calls pays one epoch per call — batch them with
    /// [`TopoDatabase::begin`] instead.
    ///
    /// # Panics
    ///
    /// Like [`Transaction::commit`], panics if a durable commit fails (the
    /// database has degraded to read-only); use a transaction with
    /// [`Transaction::try_commit`] to handle that as a typed error.
    pub fn insert<S: Into<String>>(&mut self, name: S, region: Region) {
        let mut txn = self.begin();
        txn.insert(name, region);
        txn.commit();
    }

    /// Remove a region, returning it if present.
    ///
    /// Removing a name that does not exist is a complete no-op: no epoch
    /// bump, no re-sweep. (`&mut self` guarantees no commit can interleave
    /// between the lookup and the removal.)
    ///
    /// # Panics
    ///
    /// Like [`Transaction::commit`], panics if a durable commit fails (the
    /// database has degraded to read-only); use a transaction with
    /// [`Transaction::try_commit`] to handle that as a typed error.
    pub fn remove(&mut self, name: &str) -> Option<Region> {
        let existing = self.instance().ext(name).cloned();
        if existing.is_some() {
            self.commit_ops(vec![Op::Remove(name.to_string())]).unwrap_or_else(|e| {
                panic!("remove failed: {e}; use a transaction with try_commit() to handle this")
            });
        }
        existing
    }

    /// Commit a batch of buffered operations — the funnel both
    /// [`Transaction::try_commit`] and the single-mutation wrappers go
    /// through.
    ///
    /// An `Err` — always [`TopoDbError::Degraded`] — means nothing was
    /// published: readers stay on the previous epoch and the log holds no
    /// record of the batch.
    pub(crate) fn commit_ops(&self, ops: Vec<Op>) -> Result<CommitSummary, TopoDbError> {
        // Degraded fast path: fail before building anything. (The publish
        // path re-checks under its own serialization; this check just makes
        // rejected commits cheap.)
        if let Some(d) = &self.durability {
            if let Some(cause) = d.degraded_cause() {
                return Err(d.reject_degraded(cause));
            }
        }
        match &self.backend {
            Backend::Chain(chain) => {
                chain.commit(ops, &self.counters, self.durability.as_ref())
            }
            Backend::Legacy(lock) => {
                let mut st = write(lock);
                let (next, changed) = epoch::apply_ops(&st.instance, &ops);
                if changed.is_empty() {
                    return Ok(CommitSummary { epoch: st.epoch, changed });
                }
                // Log before publish: the record must be on the log before
                // any state below is overwritten (the write lock already
                // serializes appends in epoch order). A failed append
                // returns before mutating anything, leaving the cache at
                // the previous epoch — consistent with what a reopen of
                // the log would recover.
                if let Some(d) = &self.durability {
                    d.log_batch(st.epoch + 1, &ops, &changed, &next)?;
                }
                // Infallible from here on: whole-value overwrites only, so
                // a poisoned lock can never expose partially-applied state.
                st.instance = Arc::new(next);
                st.epoch += 1;
                st.snapshot = None;
                st.flat = None;
                st.components
                    .retain(|key, _| !key.iter().any(|n| changed.iter().any(|c| c == n)));
                Ok(CommitSummary { epoch: st.epoch, changed })
            }
        }
    }

    // ---- instance accessors ---------------------------------------------

    /// The spatial instance of the current epoch, shared behind an [`Arc`]
    /// (epochs are immutable; a commit publishes a new instance).
    pub fn instance(&self) -> Arc<SpatialInstance> {
        match &self.backend {
            Backend::Chain(chain) => Arc::clone(&chain.head().instance),
            Backend::Legacy(lock) => Arc::clone(&read(lock).instance),
        }
    }

    /// Region names in canonical order.
    pub fn names(&self) -> Vec<String> {
        self.instance().names().into_iter().map(String::from).collect()
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.instance().len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.instance().is_empty()
    }

    // ---- read path ------------------------------------------------------

    /// The immutable [`Snapshot`] of the current epoch — the read half of
    /// the facade.
    ///
    /// On the epoch-chain backend this is **wait-free**: one atomic load of
    /// the published head plus an `Arc` refcount bump. Published epochs are
    /// built before they become visible, so no snapshot acquisition ever
    /// performs (or waits on) a rebuild — only the very first read of a
    /// database constructed from an un-built instance pays its initial
    /// build, exactly once. The snapshot is `Send + Sync` and keeps
    /// answering for its epoch however many batches are committed
    /// afterwards; call `snapshot()` again after a commit to observe the
    /// new epoch.
    ///
    /// On the legacy backend (`TOPODB_EPOCH_CHAIN=off`) acquisition takes
    /// the cache read lock, and the first acquisition after a commit pays
    /// the re-sweep under the write lock.
    pub fn snapshot(&self) -> Snapshot {
        match &self.backend {
            Backend::Chain(chain) => chain.head().built(&self.counters).snapshot.clone(),
            Backend::Legacy(lock) => {
                if let Some(snapshot) = &read(lock).snapshot {
                    return snapshot.clone();
                }
                let mut st = write(lock);
                self.legacy_ensure(&mut st);
                st.snapshot.as_ref().expect("snapshot just ensured").clone()
            }
        }
    }

    /// Ensure the legacy cache holds the snapshot of the current epoch:
    /// re-partition, re-sweep only the components invalidated since the
    /// last build, assemble the view. Every mutation of `st` is a
    /// whole-value insertion of a completely built structure, so a panic
    /// mid-build (with the write lock held) cannot tear the cache.
    fn legacy_ensure(&self, st: &mut LegacyState) {
        if st.snapshot.is_some() {
            return;
        }
        let built = {
            let LegacyState { instance, components, .. } = &*st;
            epoch::build_epoch(st.epoch, instance, |key| components.get(key).cloned(), &self.counters)
        };
        // Replacing the map wholesale also prunes entries whose component
        // no longer exists (merged or split by an update since last build).
        st.components = built.components;
        st.snapshot = Some(built.snapshot);
    }

    /// The zero-copy global complex view of the current instance — shared
    /// behind an [`Arc`]. Equivalent to `self.snapshot().complex_view()`.
    pub fn complex_view(&self) -> Arc<GlobalComplexView> {
        self.snapshot().complex_view()
    }

    /// The flat cell complex of the current instance.
    ///
    /// This materializes (and caches per epoch) a deep copy of every cell
    /// out of the component sub-complexes — `O(total cells)`. Prefer
    /// [`TopoDatabase::snapshot`] / [`TopoDatabase::complex_view`] unless a
    /// caller specifically needs the flat [`CellComplex`] representation;
    /// all of this facade's own reads go through the view.
    pub fn cell_complex(&self) -> Arc<CellComplex> {
        match &self.backend {
            Backend::Chain(chain) => chain.head().flat(&self.counters),
            Backend::Legacy(lock) => {
                if let Some(flat) = &read(lock).flat {
                    return Arc::clone(flat);
                }
                let mut st = write(lock);
                self.legacy_ensure(&mut st);
                if st.flat.is_none() {
                    let snapshot = st.snapshot.as_ref().expect("snapshot just ensured");
                    st.flat = Some(Arc::new(snapshot.view_ref().to_cell_complex()));
                }
                Arc::clone(st.flat.as_ref().expect("flat complex just computed"))
            }
        }
    }

    /// The topological invariant `T_I` of the current instance, shared
    /// zero-copy. Thin wrapper over [`Snapshot::invariant`]; repeated calls
    /// between two commits return the same [`Arc`].
    pub fn invariant(&self) -> Arc<Invariant> {
        self.snapshot().invariant()
    }

    /// The component sub-complexes backing the current complex, as
    /// `(region names, component)` pairs in name-set order.
    ///
    /// Builds the current epoch if needed. The returned [`Arc`]s are clones
    /// of the epoch's entries: a component untouched by the updates between
    /// two calls is returned pointer-identical (`Arc::ptr_eq`), which is
    /// the observable guarantee of incremental maintenance.
    pub fn component_complexes(&self) -> Vec<(Vec<String>, Arc<ComponentComplex>)> {
        match &self.backend {
            Backend::Chain(chain) => {
                let head = chain.head();
                let built = head.built(&self.counters);
                built.components.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect()
            }
            Backend::Legacy(lock) => {
                {
                    // Warm path: a cached snapshot means the component map
                    // is current too, so a read lock suffices.
                    let st = read(lock);
                    if st.snapshot.is_some() {
                        return st
                            .components
                            .iter()
                            .map(|(k, v)| (k.clone(), Arc::clone(v)))
                            .collect();
                    }
                }
                let mut st = write(lock);
                self.legacy_ensure(&mut st);
                st.components.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect()
            }
        }
    }

    /// How many times this database has built (assembled) a global cell
    /// complex.
    ///
    /// Diagnostic for cache effectiveness: any sequence of reads between two
    /// commits should increase this by at most one, whatever mix of
    /// snapshots, relations, queries or invariant calls it makes — and a
    /// committed batch of `k` mutations still only adds one (plus one per
    /// publish-conflict retry under concurrent commits).
    pub fn complex_build_count(&self) -> u64 {
        self.counters.complex_builds.load(Ordering::Relaxed)
    }

    /// How many component sub-complexes this database has swept from
    /// scratch.
    ///
    /// Diagnostic for *incremental* cache effectiveness: a commit re-sweeps
    /// only the components whose geometry interacts with the changed
    /// regions — on a multi-cluster map this stays proportional to the
    /// batch while [`TopoDatabase::complex_build_count`] grows by one,
    /// however large the rest of the map is.
    pub fn component_rebuild_count(&self) -> u64 {
        self.counters.component_rebuilds.load(Ordering::Relaxed)
    }

    /// How many epoch-chain publish attempts lost the head
    /// compare-exchange to a concurrent commit and retried (always `0` on
    /// the legacy backend, and under single-threaded writes).
    pub fn publish_conflict_count(&self) -> u64 {
        self.counters.publish_conflicts.load(Ordering::Relaxed)
    }

    /// The current update epoch: the number of *effective* committed batches
    /// so far (single-mutation [`TopoDatabase::insert`] / successful
    /// [`TopoDatabase::remove`] calls count as one-operation batches; a
    /// commit that changes nothing does not advance the epoch). Epochs are
    /// published fully built; [`Snapshot::epoch`] records which epoch a
    /// snapshot belongs to.
    pub fn update_epoch(&self) -> u64 {
        match &self.backend {
            Backend::Chain(chain) => chain.head().epoch,
            Backend::Legacy(lock) => read(lock).epoch,
        }
    }

    // ---- thin read wrappers (prefer Snapshot) ---------------------------

    /// The thematic relational database `thematic(I)` over the schema `Th`.
    /// Thin wrapper over [`Snapshot::thematic`].
    pub fn thematic(&self) -> relstore::Database {
        self.snapshot().thematic()
    }

    /// The 4-intersection relation between two named regions. Thin wrapper
    /// over [`Snapshot::relation`].
    pub fn relation(&self, a: &str, b: &str) -> Result<Relation4, TopoDbError> {
        self.snapshot().relation(a, b)
    }

    /// All pairwise relations, in name order. Thin wrapper over
    /// [`Snapshot::relation_matrix`].
    pub fn relation_matrix(&self) -> Vec<(String, String, Relation4)> {
        self.snapshot().relation_matrix()
    }

    /// Is this database topologically equivalent (homeomorphic) to another?
    /// Decided via invariant isomorphism (Theorem 3.4).
    pub fn homeomorphic_to(&self, other: &TopoDatabase) -> bool {
        if self.names() != other.names() {
            return false;
        }
        invariant::isomorphic(&self.invariant(), &other.invariant())
    }

    /// Evaluate a region-based query and collapse the answer to a `bool`.
    ///
    /// Thin wrapper over the snapshot read path: sentences return their
    /// truth value; a formula with free name variables returns whether
    /// *some* satisfying assignment exists (evaluated as the existential
    /// closure, which stops at the first witness instead of enumerating
    /// every row). Use [`Snapshot::query`] to obtain the bindings
    /// themselves.
    pub fn query(&self, text: &str) -> Result<bool, TopoDbError> {
        self.query_prepared_bool(&PreparedQuery::compile(text)?)
    }

    /// Evaluate an already-parsed query, collapsed to `bool` like
    /// [`TopoDatabase::query`].
    pub fn query_formula(&self, formula: &query::Formula) -> Result<bool, TopoDbError> {
        self.query_prepared_bool(&PreparedQuery::from_formula(formula.clone())?)
    }

    fn query_prepared_bool(&self, prepared: &PreparedQuery) -> Result<bool, TopoDbError> {
        if prepared.is_boolean() {
            Ok(self.snapshot().evaluate(prepared)?.holds())
        } else {
            let closed = prepared.existential_closure();
            self.snapshot().evaluator().eval(&closed).map_err(TopoDbError::from)
        }
    }

    /// Validate the database's own invariant (always valid; exposed mainly so
    /// applications can validate externally modified invariants the same
    /// way — Theorem 3.8).
    pub fn validate_invariant(inv: &Invariant) -> Vec<invariant::ValidationError> {
        invariant::validate(inv)
    }

    /// A human-readable summary of the database and its derived structures:
    /// region count, invariant cell counts, the interaction components
    /// backing the complex with their per-component cell counts, and which
    /// representation(s) of the global complex are currently cached (the
    /// zero-copy view, plus the flat deep copy if a caller materialized
    /// one).
    pub fn summary(&self) -> String {
        let snapshot = self.snapshot();
        let inv = snapshot.invariant();
        let view = snapshot.complex_view();
        let per_component: Vec<String> = view
            .component_cell_counts()
            .iter()
            .map(|(v, e, f)| format!("{}", v + e + f))
            .collect();
        let has_flat = match &self.backend {
            Backend::Chain(chain) => chain.head().has_flat(),
            Backend::Legacy(lock) => read(lock).flat.is_some(),
        };
        let cached = if has_flat { "view + flat copy" } else { "view" };
        format!(
            "{} region(s); invariant: {} vertices, {} edges, {} faces; {} component(s), cells per component: [{}]; cached complex: {}",
            self.len(),
            inv.vertex_count(),
            inv.edge_count(),
            inv.face_count(),
            view.component_count(),
            per_component.join(", "),
            cached
        )
    }
}

/// A read guard on the legacy cache, recovering from poisoning — see the
/// "Concurrency model" notes on [`TopoDatabase`]: all writer-side mutations
/// are whole-value overwrites sequenced after the fallible work, so a
/// poisoned lock never holds torn state.
fn read(lock: &RwLock<LegacyState>) -> RwLockReadGuard<'_, LegacyState> {
    lock.read().unwrap_or_else(PoisonError::into_inner)
}

/// A write guard on the legacy cache (recovering from poisoning, see
/// [`read`]).
fn write(lock: &RwLock<LegacyState>) -> RwLockWriteGuard<'_, LegacyState> {
    lock.write().unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_core::fixtures;

    #[test]
    fn facade_round_trip() {
        let mut db = TopoDatabase::from_instance(fixtures::fig_1c());
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert_eq!(db.relation("A", "B").unwrap(), Relation4::Overlap);
        assert_eq!(db.query("overlap(A, B)"), Ok(true));
        assert_eq!(db.query("disjoint(A, B)"), Ok(false));
        assert!(db.query("nonsense(").is_err());
        assert!(db.relation("A", "Z").is_err());
        assert!(db.summary().contains("2 region(s)"));

        // Updates invalidate the cache.
        db.insert("C", spatial_core::region::Region::rect_from_ints(20, 20, 24, 24));
        assert_eq!(db.len(), 3);
        assert_eq!(db.relation("A", "C").unwrap(), Relation4::Disjoint);
        assert!(db.remove("C").is_some());
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn homeomorphism_between_databases() {
        let a = TopoDatabase::from_instance(fixtures::fig_1c());
        let b = TopoDatabase::from_instance(fixtures::fig_1c().translated(100, 100));
        let d = TopoDatabase::from_instance(fixtures::fig_1d());
        assert!(a.homeomorphic_to(&b));
        assert!(!a.homeomorphic_to(&d));
        // The same comparisons through snapshots.
        assert!(a.snapshot().homeomorphic_to(&b.snapshot()));
        assert!(!a.snapshot().homeomorphic_to(&d.snapshot()));
    }

    /// The caching/sharing contract, on a given backend.
    fn check_derived_structures_cached(epoch_chain: bool) {
        let mut db = TopoDatabase::from_instance_with_epoch_chain(fixtures::fig_1c(), epoch_chain);
        assert_eq!(db.epoch_chain_enabled(), epoch_chain);
        assert_eq!(db.complex_build_count(), 0, "nothing built before first use");

        // Any mix of reads performs exactly one construction...
        let c1 = db.cell_complex();
        let matrix = db.relation_matrix();
        assert_eq!(matrix.len(), 1);
        let _ = db.relation("A", "B").unwrap();
        let _ = db.query("overlap(A, B)").unwrap();
        let inv1 = db.invariant();
        let _ = db.thematic();
        let _ = db.summary();
        let snap = db.snapshot();
        assert_eq!(db.complex_build_count(), 1, "reads must reuse the cached complex");
        assert_eq!(snap.epoch(), 0);

        // ...and hands out the same shared allocation, not deep copies.
        let c2 = db.cell_complex();
        assert!(Arc::ptr_eq(&c1, &c2), "cell_complex() must return the cached Arc");
        let inv2 = db.invariant();
        assert!(Arc::ptr_eq(&inv1, &inv2), "invariant() must return the cached Arc");
        let inv3 = snap.invariant();
        assert!(Arc::ptr_eq(&inv1, &inv3), "snapshot shares the database's invariant");

        // Updates invalidate: the commit (chain) or the next read burst
        // (legacy) performs exactly one rebuild.
        db.insert("C", spatial_core::region::Region::rect_from_ints(20, 20, 24, 24));
        let _ = db.relation_matrix();
        let c3 = db.cell_complex();
        let _ = db.relation("A", "C").unwrap();
        assert_eq!(db.complex_build_count(), 2);
        assert!(!Arc::ptr_eq(&c1, &c3), "update must produce a fresh complex");
        // The pre-update Arc is still alive and unchanged (snapshot isolation
        // for long-lived readers).
        assert_eq!(c1.region_names().len(), 2);
        assert_eq!(c3.region_names().len(), 3);
        assert_eq!(snap.len(), 2, "pre-update snapshot still answers for its epoch");
        assert_eq!(db.publish_conflict_count(), 0, "no concurrent writers, no conflicts");
    }

    #[test]
    fn derived_structures_are_cached_and_shared() {
        check_derived_structures_cached(true);
    }

    #[test]
    fn derived_structures_are_cached_and_shared_legacy() {
        check_derived_structures_cached(false);
    }

    #[test]
    fn summary_reports_components_and_cached_representation() {
        let db = TopoDatabase::from_instance(fixtures::nested_three());
        let s = db.summary();
        // Component structure: nested_three partitions into 3 one-region
        // components of 3 cells each (1 vertex + 1 loop edge + 1 bounded
        // face).
        assert!(s.contains("3 region(s)"), "{s}");
        assert!(s.contains("3 component(s)"), "{s}");
        assert!(s.contains("cells per component: [3, 3, 3]"), "{s}");
        // Only the zero-copy view has been assembled so far.
        assert!(s.contains("cached complex: view"), "{s}");
        assert!(!s.contains("flat copy"), "{s}");
        // Materializing the flat complex is reflected in the summary.
        let _ = db.cell_complex();
        let s2 = db.summary();
        assert!(s2.contains("cached complex: view + flat copy"), "{s2}");
    }

    #[test]
    fn view_reuses_untouched_components_pointer_identically() {
        let mut db = TopoDatabase::from_instance(fixtures::nested_three());
        let v1 = db.complex_view();
        let v1b = db.complex_view();
        assert!(Arc::ptr_eq(&v1, &v1b), "complex_view() must return the cached Arc");

        // An update to a separated region re-assembles the view but reuses
        // every untouched component allocation inside it.
        db.insert("D", spatial_core::region::Region::rect_from_ints(500, 500, 504, 504));
        let v2 = db.complex_view();
        assert!(!Arc::ptr_eq(&v1, &v2), "update must produce a fresh view");
        let before: Vec<_> = v1.components().to_vec();
        let reused = v2
            .components()
            .iter()
            .filter(|c| before.iter().any(|b| Arc::ptr_eq(b, c)))
            .count();
        assert_eq!(reused, before.len(), "all pre-update components are shared by the new view");
        assert_eq!(v2.component_count(), before.len() + 1);
    }

    #[test]
    fn thematic_and_validation() {
        let db = TopoDatabase::from_instance(fixtures::nested_three());
        let th = db.thematic();
        assert_eq!(th.relation("Regions").unwrap().len(), 3);
        assert!(TopoDatabase::validate_invariant(&db.invariant()).is_empty());
    }
}
