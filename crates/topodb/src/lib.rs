//! # topodb
//!
//! A topological spatial database, reproducing the system described in
//! *"Topological Queries in Spatial Databases"* (Papadimitriou, Suciu, Vianu;
//! PODS 1996 / JCSS 1999).
//!
//! [`TopoDatabase`] is the user-facing entry point. It stores named polygonal
//! regions and exposes:
//!
//! * the 4-intersection (Egenhofer) relation between any two regions,
//! * the topological invariant `T_I` (Section 3) and homeomorphism testing
//!   against other databases (Theorem 3.4),
//! * the thematic relational summary `thematic(I)` (Corollary 3.7),
//! * region-based queries in the paper's `FO(Region, Region')` syntax,
//!   evaluated over the cell complex (the tractable language of Section 7),
//! * validation of externally supplied invariants (Theorem 3.8),
//! * incremental maintenance of the derived structures across
//!   `insert`/`remove`: the arrangement is built per interaction component
//!   and cached component-wise, so an update re-sweeps only the components
//!   whose geometry interacts with the changed region (see the
//!   [`TopoDatabase`] docs for the component-cache/epoch semantics).
//!
//! The individual crates (`spatial-core`, `arrangement`, `invariant`,
//! `relations`, `relstore`, `query`) are re-exported for direct use.
//!
//! ## Example
//!
//! ```
//! use topodb::TopoDatabase;
//! use topodb::spatial_core::prelude::*;
//!
//! let mut db = TopoDatabase::new();
//! db.insert("Lake", Region::polygon_from_ints(&[(0, 0), (8, 0), (8, 6), (0, 6)]).unwrap());
//! db.insert("Park", Region::rect_from_ints(5, 2, 12, 9));
//!
//! assert_eq!(db.relation("Lake", "Park").unwrap().name(), "overlap");
//! assert_eq!(db.query("exists r . subset(r, Lake) and subset(r, Park)"), Ok(true));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use arrangement;
pub use invariant;
pub use query;
pub use relations;
pub use relstore;
pub use spatial_core;

use arrangement::{CellComplex, ComponentComplex, GlobalComplexView};
use invariant::Invariant;
use query::cell_eval::CellEvaluator;
use relations::Relation4;
use spatial_core::instance::SpatialInstance;
use spatial_core::region::Region;
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Errors surfaced by the facade.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TopoDbError {
    /// A region name was not found.
    UnknownRegion(String),
    /// The query text could not be parsed.
    Parse(String),
    /// Query evaluation failed.
    Eval(String),
}

impl fmt::Display for TopoDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopoDbError::UnknownRegion(n) => write!(f, "unknown region `{n}`"),
            TopoDbError::Parse(m) => write!(f, "query parse error: {m}"),
            TopoDbError::Eval(m) => write!(f, "query evaluation error: {m}"),
        }
    }
}

impl std::error::Error for TopoDbError {}

/// A topological spatial database: named regions plus the derived structures
/// of the paper (cell complex, invariant, thematic relational summary),
/// computed lazily, shared zero-copy behind [`Arc`]s, and maintained
/// *incrementally* across updates.
///
/// Accessors hand out clones of the cached `Arc`s — constant-time reference
/// bumps, never deep copies — so query traffic between two updates pays for
/// at most one arrangement construction, however many relation, query or
/// invariant calls it makes.
///
/// ## Component cache and epochs
///
/// The arrangement is built by the partition → per-component sweep →
/// assemble pipeline of the `arrangement` crate, and the database caches the
/// per-component sub-complexes (`Arc<ComponentComplex>`) across updates,
/// keyed by the component's region-name set. Every [`TopoDatabase::insert`]
/// / [`TopoDatabase::remove`] starts a new *epoch*: it drops the assembled
/// complex and invariant, eagerly evicts the cached components containing
/// the changed region, and leaves every other component untouched. At the
/// next read the instance is re-partitioned; components whose geometry now
/// interacts with the changed region surface as groups with a *new* name-set
/// key (a cache miss, so they are re-swept), while every unaffected group
/// hits its cache entry and is reused pointer-identically. Entries whose key
/// no longer occurs in the partition (merged or split by the update) are
/// pruned after assembly.
///
/// The global complex is assembled *by view* ([`GlobalComplexView`]): the
/// cached `Arc<ComponentComplex>`es are composed behind a compact id
/// translation table in `O(components + cross-component nesting)`, with no
/// per-cell copying. The cost of an update followed by a read is therefore
/// `O(affected cluster)` re-sweeping plus an `O(components)` re-assembly —
/// fully proportional to the affected cluster — instead of a full
/// `O((n + k) log n)` re-sweep of the whole map. Cache-missing components
/// are swept concurrently (`ARRANGEMENT_THREADS`, see
/// [`arrangement::parallel`]), which parallelizes cold builds and widescale
/// invalidations across the independent components.
///
/// Two counters pin the behavior down: [`TopoDatabase::complex_build_count`]
/// is the number of *assembled global complexes* built (any burst of reads
/// between two updates increases it by at most one), and
/// [`TopoDatabase::component_rebuild_count`] is the number of *component
/// sub-complexes* swept from scratch — the part that incremental maintenance
/// keeps proportional to the affected geometry rather than the map size.
#[derive(Default)]
pub struct TopoDatabase {
    instance: SpatialInstance,
    cache: RefCell<Cache>,
    complex_builds: Cell<u64>,
    component_rebuilds: Cell<u64>,
    epoch: Cell<u64>,
}

#[derive(Default)]
struct Cache {
    /// The zero-copy global view — the primary read representation; every
    /// derived structure (relations, queries, invariant) is computed from
    /// it.
    view: Option<Arc<GlobalComplexView>>,
    /// The flat deep-copied complex, materialized lazily only when a caller
    /// explicitly asks for it via [`TopoDatabase::cell_complex`].
    flat: Option<Arc<CellComplex>>,
    invariant: Option<Arc<Invariant>>,
    /// Component sub-complexes surviving across updates, keyed by the
    /// component's sorted region-name set.
    components: BTreeMap<Vec<String>, Arc<ComponentComplex>>,
}

impl TopoDatabase {
    /// An empty database.
    pub fn new() -> Self {
        TopoDatabase::default()
    }

    /// Build a database from an existing instance.
    pub fn from_instance(instance: SpatialInstance) -> Self {
        TopoDatabase { instance, ..TopoDatabase::default() }
    }

    /// Insert (or replace) a named region, starting a new epoch: the
    /// assembled complex and invariant are dropped, but cached component
    /// sub-complexes not containing `name` survive and are reused by the
    /// next read unless the new geometry interacts with them.
    pub fn insert<S: Into<String>>(&mut self, name: S, region: Region) {
        let name = name.into();
        self.instance.insert(name.clone(), region);
        self.begin_epoch(&name);
    }

    /// Remove a region, starting a new epoch (see [`TopoDatabase::insert`]).
    pub fn remove(&mut self, name: &str) -> Option<Region> {
        let out = self.instance.remove(name);
        self.begin_epoch(name);
        out
    }

    /// Invalidate the derived structures affected by a change to `name`.
    fn begin_epoch(&mut self, name: &str) {
        self.epoch.set(self.epoch.get() + 1);
        let cache = self.cache.get_mut();
        cache.view = None;
        cache.flat = None;
        cache.invariant = None;
        cache.components.retain(|names, _| !names.iter().any(|n| n == name));
    }

    /// The underlying spatial instance.
    pub fn instance(&self) -> &SpatialInstance {
        &self.instance
    }

    /// Region names in canonical order.
    pub fn names(&self) -> Vec<String> {
        self.instance.names().into_iter().map(String::from).collect()
    }

    /// Number of regions.
    pub fn len(&self) -> usize {
        self.instance.len()
    }

    /// Is the database empty?
    pub fn is_empty(&self) -> bool {
        self.instance.is_empty()
    }

    /// Ensure the assembled view is cached: re-partition, re-sweep only the
    /// components invalidated since the last build (concurrently — they
    /// share nothing), and assemble the zero-copy global view over them.
    fn ensure_view(&self, cache: &mut Cache) {
        if cache.view.is_some() {
            return;
        }
        let groups = arrangement::partition_instance(&self.instance);
        let names = self.instance.names();
        let keys: Vec<Vec<String>> = groups
            .iter()
            .map(|g| g.region_indices.iter().map(|&i| names[i].to_string()).collect())
            .collect();
        // Sweep every cache-missing component, in parallel: components are
        // share-nothing work units, so a cold build (or a burst of misses
        // after a widespread update) uses all configured threads, while the
        // common one-miss incremental case takes the serial path.
        let missing: Vec<usize> =
            (0..groups.len()).filter(|&i| !cache.components.contains_key(&keys[i])).collect();
        if !missing.is_empty() {
            let threads = arrangement::parallel::configured_threads();
            let instance = &self.instance;
            let built = arrangement::parallel::map_indexed(missing.len(), threads, |j| {
                Arc::new(arrangement::build_group_component(instance, &groups[missing[j]]))
            });
            self.component_rebuilds
                .set(self.component_rebuilds.get() + missing.len() as u64);
            for (j, component) in built.into_iter().enumerate() {
                cache.components.insert(keys[missing[j]].clone(), component);
            }
        }
        let components: Vec<Arc<ComponentComplex>> =
            keys.iter().map(|key| Arc::clone(&cache.components[key])).collect();
        // Prune entries whose component no longer exists (merged or split by
        // an update since they were built).
        cache.components.retain(|key, _| keys.contains(key));
        let global_names: Vec<String> = names.iter().map(|s| s.to_string()).collect();
        self.complex_builds.set(self.complex_builds.get() + 1);
        cache.view = Some(Arc::new(GlobalComplexView::new(global_names, components)));
    }

    /// The zero-copy global complex view of the current instance — the
    /// primary read representation, shared behind an [`Arc`].
    ///
    /// Assembling the view after an update costs `O(components +
    /// cross-component nesting)` plus the re-sweep of the affected
    /// cluster(s): untouched components are reused as shared
    /// `Arc<ComponentComplex>` pointers with no per-cell copying. All
    /// derived-structure computations accept it through
    /// [`arrangement::ComplexRead`].
    pub fn complex_view(&self) -> Arc<GlobalComplexView> {
        let mut cache = self.cache.borrow_mut();
        self.ensure_view(&mut cache);
        Arc::clone(cache.view.as_ref().expect("view just computed"))
    }

    /// The flat cell complex of the current instance.
    ///
    /// This materializes (and caches) a deep copy of every cell out of the
    /// component sub-complexes — `O(total cells)`. Prefer
    /// [`TopoDatabase::complex_view`] unless a caller specifically needs the
    /// flat [`CellComplex`] representation; all of this facade's own reads
    /// (relations, queries, invariant) go through the view.
    pub fn cell_complex(&self) -> Arc<CellComplex> {
        let mut cache = self.cache.borrow_mut();
        self.ensure_view(&mut cache);
        if cache.flat.is_none() {
            let view = cache.view.as_ref().expect("view just ensured");
            cache.flat = Some(Arc::new(view.to_cell_complex()));
        }
        Arc::clone(cache.flat.as_ref().expect("flat complex just computed"))
    }

    /// The topological invariant `T_I` of the current instance, shared
    /// zero-copy like [`TopoDatabase::complex_view`]. Extracted from the
    /// view (the flat complex is never materialized for this).
    pub fn invariant(&self) -> Arc<Invariant> {
        let mut cache = self.cache.borrow_mut();
        if cache.invariant.is_none() {
            self.ensure_view(&mut cache);
            let view = cache.view.as_ref().expect("view just ensured");
            cache.invariant = Some(Arc::new(Invariant::from_complex(view.as_ref())));
        }
        Arc::clone(cache.invariant.as_ref().expect("invariant just computed"))
    }

    /// The cached component sub-complexes backing the current complex, as
    /// `(region names, component)` pairs in partition order.
    ///
    /// Builds the view if needed. The returned [`Arc`]s are clones of the
    /// cache entries: a component untouched by the updates between two calls
    /// is returned pointer-identical (`Arc::ptr_eq`), which is the
    /// observable guarantee of incremental maintenance.
    pub fn component_complexes(&self) -> Vec<(Vec<String>, Arc<ComponentComplex>)> {
        let mut cache = self.cache.borrow_mut();
        self.ensure_view(&mut cache);
        cache.components.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect()
    }

    /// How many times this database has built (assembled) its global cell
    /// complex.
    ///
    /// Diagnostic for cache effectiveness: any sequence of reads between two
    /// updates should increase this by at most one, whatever mix of
    /// [`TopoDatabase::relation`], [`TopoDatabase::relation_matrix`],
    /// [`TopoDatabase::query`], [`TopoDatabase::invariant`] or
    /// [`TopoDatabase::thematic`] calls it makes.
    pub fn complex_build_count(&self) -> u64 {
        self.complex_builds.get()
    }

    /// How many component sub-complexes this database has swept from
    /// scratch.
    ///
    /// Diagnostic for *incremental* cache effectiveness: an update followed
    /// by a read re-sweeps only the components whose geometry interacts with
    /// the changed region — on a multi-cluster map this stays at a handful
    /// per update while [`TopoDatabase::complex_build_count`] grows by one,
    /// however large the rest of the map is.
    pub fn component_rebuild_count(&self) -> u64 {
        self.component_rebuilds.get()
    }

    /// The current update epoch: the number of [`TopoDatabase::insert`] /
    /// [`TopoDatabase::remove`] calls so far. Cached derived structures are
    /// always consistent with the latest epoch at the time they are read.
    pub fn update_epoch(&self) -> u64 {
        self.epoch.get()
    }

    /// The thematic relational database `thematic(I)` over the schema `Th`.
    pub fn thematic(&self) -> relstore::Database {
        invariant::thematic::to_database(&self.invariant())
    }

    /// The 4-intersection relation between two named regions, answered from
    /// the cached complex view.
    pub fn relation(&self, a: &str, b: &str) -> Result<Relation4, TopoDbError> {
        for name in [a, b] {
            if self.instance.ext(name).is_none() {
                return Err(TopoDbError::UnknownRegion(name.to_string()));
            }
        }
        let view = self.complex_view();
        relations::relation_in_complex(view.as_ref(), a, b)
            .ok_or_else(|| TopoDbError::UnknownRegion(format!("{a} / {b}")))
    }

    /// All pairwise relations, in name order, answered from the cached
    /// complex view — the arrangement is not rebuilt per call.
    pub fn relation_matrix(&self) -> Vec<(String, String, Relation4)> {
        relations::all_pairwise_relations_in_complex(self.complex_view().as_ref())
    }

    /// Is this database topologically equivalent (homeomorphic) to another?
    /// Decided via invariant isomorphism (Theorem 3.4).
    pub fn homeomorphic_to(&self, other: &TopoDatabase) -> bool {
        if self.instance.names() != other.instance.names() {
            return false;
        }
        invariant::isomorphic(&self.invariant(), &other.invariant())
    }

    /// Evaluate a region-based query given in the concrete syntax of the
    /// `query` crate (quantifiers range over disc-like cell unions).
    pub fn query(&self, text: &str) -> Result<bool, TopoDbError> {
        let formula = query::parse(text).map_err(|e| TopoDbError::Parse(e.to_string()))?;
        self.query_formula(&formula)
    }

    /// Evaluate an already-parsed query.
    pub fn query_formula(&self, formula: &query::Formula) -> Result<bool, TopoDbError> {
        let evaluator = CellEvaluator::from_complex(self.complex_view().as_ref());
        evaluator.eval(formula).map_err(|e| TopoDbError::Eval(e.to_string()))
    }

    /// Validate the database's own invariant (always valid; exposed mainly so
    /// applications can validate externally modified invariants the same
    /// way — Theorem 3.8).
    pub fn validate_invariant(inv: &Invariant) -> Vec<invariant::ValidationError> {
        invariant::validate(inv)
    }

    /// A human-readable summary of the database and its derived structures:
    /// region count, invariant cell counts, the interaction components
    /// backing the complex with their per-component cell counts, and which
    /// representation(s) of the global complex are currently cached (the
    /// zero-copy view, plus the flat deep copy if a caller materialized
    /// one).
    pub fn summary(&self) -> String {
        let inv = self.invariant();
        let view = self.complex_view();
        let per_component: Vec<String> = view
            .component_cell_counts()
            .iter()
            .map(|(v, e, f)| format!("{}", v + e + f))
            .collect();
        let cached = if self.cache.borrow().flat.is_some() {
            "view + flat copy"
        } else {
            "view"
        };
        format!(
            "{} region(s); invariant: {} vertices, {} edges, {} faces; {} component(s), cells per component: [{}]; cached complex: {}",
            self.len(),
            inv.vertex_count(),
            inv.edge_count(),
            inv.face_count(),
            view.component_count(),
            per_component.join(", "),
            cached
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spatial_core::fixtures;

    #[test]
    fn facade_round_trip() {
        let mut db = TopoDatabase::from_instance(fixtures::fig_1c());
        assert_eq!(db.len(), 2);
        assert!(!db.is_empty());
        assert_eq!(db.relation("A", "B").unwrap(), Relation4::Overlap);
        assert_eq!(db.query("overlap(A, B)"), Ok(true));
        assert_eq!(db.query("disjoint(A, B)"), Ok(false));
        assert!(db.query("nonsense(").is_err());
        assert!(db.relation("A", "Z").is_err());
        assert!(db.summary().contains("2 region(s)"));

        // Updates invalidate the cache.
        db.insert("C", spatial_core::region::Region::rect_from_ints(20, 20, 24, 24));
        assert_eq!(db.len(), 3);
        assert_eq!(db.relation("A", "C").unwrap(), Relation4::Disjoint);
        assert!(db.remove("C").is_some());
        assert_eq!(db.len(), 2);
    }

    #[test]
    fn homeomorphism_between_databases() {
        let a = TopoDatabase::from_instance(fixtures::fig_1c());
        let b = TopoDatabase::from_instance(fixtures::fig_1c().translated(100, 100));
        let d = TopoDatabase::from_instance(fixtures::fig_1d());
        assert!(a.homeomorphic_to(&b));
        assert!(!a.homeomorphic_to(&d));
    }

    #[test]
    fn derived_structures_are_cached_and_shared() {
        let mut db = TopoDatabase::from_instance(fixtures::fig_1c());
        assert_eq!(db.complex_build_count(), 0, "nothing built before first use");

        // Any mix of reads performs exactly one construction...
        let c1 = db.cell_complex();
        let matrix = db.relation_matrix();
        assert_eq!(matrix.len(), 1);
        let _ = db.relation("A", "B").unwrap();
        let _ = db.query("overlap(A, B)").unwrap();
        let inv1 = db.invariant();
        let _ = db.thematic();
        let _ = db.summary();
        assert_eq!(db.complex_build_count(), 1, "reads must reuse the cached complex");

        // ...and hands out the same shared allocation, not deep copies.
        let c2 = db.cell_complex();
        assert!(Arc::ptr_eq(&c1, &c2), "cell_complex() must return the cached Arc");
        let inv2 = db.invariant();
        assert!(Arc::ptr_eq(&inv1, &inv2), "invariant() must return the cached Arc");

        // Updates invalidate: exactly one rebuild serves the next burst.
        db.insert("C", spatial_core::region::Region::rect_from_ints(20, 20, 24, 24));
        let _ = db.relation_matrix();
        let c3 = db.cell_complex();
        let _ = db.relation("A", "C").unwrap();
        assert_eq!(db.complex_build_count(), 2);
        assert!(!Arc::ptr_eq(&c1, &c3), "update must produce a fresh complex");
        // The pre-update Arc is still alive and unchanged (snapshot isolation
        // for long-lived readers).
        assert_eq!(c1.region_names().len(), 2);
        assert_eq!(c3.region_names().len(), 3);
    }

    #[test]
    fn summary_reports_components_and_cached_representation() {
        let db = TopoDatabase::from_instance(fixtures::nested_three());
        let s = db.summary();
        // Component structure: nested_three partitions into 3 one-region
        // components of 3 cells each (1 vertex + 1 loop edge + 1 bounded
        // face).
        assert!(s.contains("3 region(s)"), "{s}");
        assert!(s.contains("3 component(s)"), "{s}");
        assert!(s.contains("cells per component: [3, 3, 3]"), "{s}");
        // Only the zero-copy view has been assembled so far.
        assert!(s.contains("cached complex: view"), "{s}");
        assert!(!s.contains("flat copy"), "{s}");
        // Materializing the flat complex is reflected in the summary.
        let _ = db.cell_complex();
        let s2 = db.summary();
        assert!(s2.contains("cached complex: view + flat copy"), "{s2}");
    }

    #[test]
    fn view_reuses_untouched_components_pointer_identically() {
        let mut db = TopoDatabase::from_instance(fixtures::nested_three());
        let v1 = db.complex_view();
        let v1b = db.complex_view();
        assert!(Arc::ptr_eq(&v1, &v1b), "complex_view() must return the cached Arc");

        // An update to a separated region re-assembles the view but reuses
        // every untouched component allocation inside it.
        db.insert("D", spatial_core::region::Region::rect_from_ints(500, 500, 504, 504));
        let v2 = db.complex_view();
        assert!(!Arc::ptr_eq(&v1, &v2), "update must produce a fresh view");
        let before: Vec<_> = v1.components().to_vec();
        let reused = v2
            .components()
            .iter()
            .filter(|c| before.iter().any(|b| Arc::ptr_eq(b, c)))
            .count();
        assert_eq!(reused, before.len(), "all pre-update components are shared by the new view");
        assert_eq!(v2.component_count(), before.len() + 1);
    }

    #[test]
    fn thematic_and_validation() {
        let db = TopoDatabase::from_instance(fixtures::nested_three());
        let th = db.thematic();
        assert_eq!(th.relation("Regions").unwrap().len(), 3);
        assert!(TopoDatabase::validate_invariant(&db.invariant()).is_empty());
    }
}
