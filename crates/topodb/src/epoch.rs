//! The epoch chain: wait-free snapshot publication for
//! [`TopoDatabase`](crate::TopoDatabase).
//!
//! The chain is a singly-linked list of immutable, fully-built epochs
//! ([`EpochState`]), newest first, published through an atomic pointer
//! ([`swap::ArcSwap`]). Readers never take a lock: acquiring a snapshot is
//! one atomic head load plus an `Arc` refcount bump. Writers run a
//! three-stage pipeline:
//!
//! 1. **Intent** — under the small writers-only mutex, load the head as the
//!    *base epoch* and register its number in the writers registry, which
//!    pins the chain: pruning never severs a `prev` link below the minimum
//!    registered base, so conflict resolution can always walk from any later
//!    head back down to a registered base.
//! 2. **Build, outside any lock** — apply the buffered operations to a copy
//!    of the base instance, then re-sweep only the partition groups whose
//!    region-name set meets a changed name; every other group reuses the
//!    base epoch's `Arc<ComponentComplex>` pointer-identically
//!    ([`arrangement::build_components_with_reuse`], on the shared worker
//!    pool under the strip-budget split). The result is a complete new
//!    [`EpochState`] — view, snapshot and component map — constructed while
//!    readers keep loading the old head and other writers build their own
//!    epochs concurrently.
//! 3. **Publish** — compare-exchange the head from the base to the new
//!    epoch. On conflict (another writer published first), collect the
//!    names changed by the intervening epochs (a `prev`-walk from the new
//!    head down to the old base), rebuild **only** the components those
//!    names invalidate — reusing the new head's components where this
//!    commit didn't touch them and this attempt's own components where the
//!    intervening commits didn't — re-register against the new base, and
//!    retry. Two commits touching disjoint components therefore both build
//!    concurrently and the loser's retry is a pure re-assembly (zero
//!    re-sweeps).
//!
//! **Reclamation invariant.** Three mechanisms bound memory without ever
//! freeing under a reader: (a) the head swap itself retires the old head
//! into [`swap::ArcSwap`]'s limbo list, which frees it only after both
//! reader-pin slots have been observed empty at generation flips *after*
//! the retirement; (b) the `prev` chain hanging off the head is pruned
//! after each publish down to the minimum in-flight writer base (the
//! registry), so the list length is bounded by concurrent writers, not by
//! history; (c) severed epochs are plain `Arc`s — long-lived
//! [`Snapshot`]s keep exactly the cells they reference alive and nothing
//! else.

use crate::snapshot::Snapshot;
use crate::transaction::{CommitSummary, Op};
use arrangement::{CellComplex, ComponentComplex, GlobalComplexView};
use spatial_core::instance::SpatialInstance;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock, PoisonError};

pub(crate) mod swap;
use swap::ArcSwap;

/// Build/diagnostic counters shared by both backends of the facade.
#[derive(Default)]
pub(crate) struct BuildCounters {
    /// Global assemblies performed (see
    /// [`TopoDatabase::complex_build_count`](crate::TopoDatabase::complex_build_count)).
    pub complex_builds: AtomicU64,
    /// Component sub-complexes swept from scratch.
    pub component_rebuilds: AtomicU64,
    /// Epoch-chain publish attempts that lost the head compare-exchange and
    /// retried against the intervening epoch.
    pub publish_conflicts: AtomicU64,
}

/// One immutable epoch of the database: the instance as of that epoch, the
/// derived structures, and the link to the predecessor epoch.
pub(crate) struct EpochState {
    /// The epoch number ([`Snapshot::epoch`] of this epoch's snapshot).
    pub epoch: u64,
    /// The instance as of this epoch.
    pub instance: Arc<SpatialInstance>,
    /// Names changed by the commit that published this epoch (empty for the
    /// root). Conflict resolution unions these along a `prev` walk.
    changed: BTreeSet<String>,
    /// Derived structures. Published epochs are fully built *before* the
    /// head swap; only the root epoch (constructed without a commit) builds
    /// lazily on first read, so constructing a database stays free.
    built: OnceLock<Built>,
    /// The flat deep-copied complex, materialized only on explicit request
    /// ([`TopoDatabase::cell_complex`](crate::TopoDatabase::cell_complex)).
    flat: OnceLock<Arc<CellComplex>>,
    /// The predecessor epoch; `None` for the root and for epochs whose tail
    /// has been pruned. Only writers touch this (a `Mutex`, not part of any
    /// read path).
    prev: Mutex<Option<Arc<EpochState>>>,
}

/// The derived structures of one epoch.
#[derive(Clone)]
pub(crate) struct Built {
    /// Component sub-complexes keyed by sorted region-name set — the reuse
    /// source for the next commit.
    pub components: BTreeMap<Vec<String>, Arc<ComponentComplex>>,
    /// The epoch's snapshot (zero-copy view + lazy derived reads).
    pub snapshot: Snapshot,
}

fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    // Writer-side state is only ever mutated in complete steps (registry
    // increments/decrements, a prev-link overwrite), so a poisoned mutex
    // cannot hold torn data.
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

impl EpochState {
    /// The derived structures, building them on first use (root epoch only —
    /// published epochs are always pre-built).
    pub fn built(&self, counters: &BuildCounters) -> &Built {
        self.built.get_or_init(|| build_epoch(self.epoch, &self.instance, |_| None, counters))
    }

    /// The derived structures if they have been built.
    pub fn built_opt(&self) -> Option<&Built> {
        self.built.get()
    }

    /// The flat deep-copied complex of this epoch, materialized on first
    /// request and shared afterwards.
    pub fn flat(&self, counters: &BuildCounters) -> Arc<CellComplex> {
        let built = self.built(counters);
        Arc::clone(
            self.flat
                .get_or_init(|| Arc::new(built.snapshot.view_ref().to_cell_complex())),
        )
    }

    /// Whether the flat copy has been materialized (for
    /// [`TopoDatabase::summary`](crate::TopoDatabase::summary)).
    pub fn has_flat(&self) -> bool {
        self.flat.get().is_some()
    }
}

/// Apply buffered operations to a copy of `base`, returning the resulting
/// instance and the names whose membership or geometry actually changed, in
/// first-change order (replacing a region by an identical one and removing
/// an absent name do not count).
pub(crate) fn apply_ops(base: &SpatialInstance, ops: &[Op]) -> (SpatialInstance, Vec<String>) {
    let mut next = base.clone();
    let mut changed: Vec<String> = Vec::new();
    for op in ops {
        match op {
            Op::Insert(name, region) => {
                let replaced = next.insert(name.clone(), region.clone());
                // Replacing a region with an identical one changes nothing
                // (compare against the stored geometry; `insert` consumed
                // the new one).
                let unchanged = replaced.is_some() && next.ext(name) == replaced.as_ref();
                if !unchanged && !changed.contains(name) {
                    changed.push(name.clone());
                }
            }
            Op::Remove(name) => {
                if next.remove(name).is_some() && !changed.contains(name) {
                    changed.push(name.clone());
                }
            }
        }
    }
    (next, changed)
}

/// Build the derived structures of an epoch: partition, sweep every group
/// `reuse` declines (concurrently), assemble the zero-copy view, wrap it in
/// a snapshot.
pub(crate) fn build_epoch<F>(
    epoch: u64,
    instance: &SpatialInstance,
    reuse: F,
    counters: &BuildCounters,
) -> Built
where
    F: Fn(&[String]) -> Option<Arc<ComponentComplex>> + Sync,
{
    let set = arrangement::build_components_with_reuse(instance, reuse);
    counters.component_rebuilds.fetch_add(set.rebuilt as u64, Ordering::Relaxed);
    counters.complex_builds.fetch_add(1, Ordering::Relaxed);
    let components: BTreeMap<Vec<String>, Arc<ComponentComplex>> =
        set.keys.iter().cloned().zip(set.components.iter().cloned()).collect();
    let global_names: Vec<String> = instance.names().iter().map(|s| s.to_string()).collect();
    let view = Arc::new(GlobalComplexView::new(global_names, set.components));
    Built { components, snapshot: Snapshot::new(epoch, view) }
}

/// The epoch chain itself: the published head plus the writers registry.
pub(crate) struct EpochChain {
    head: ArcSwap<EpochState>,
    /// Base epochs of in-flight commits (a multiset: epoch → writer count).
    /// Registration happens under this mutex *before* the base head is
    /// adopted, and pruning happens under it too, so the chain is never
    /// severed below a registered base.
    writers: Mutex<BTreeMap<u64, usize>>,
}

/// Deregisters a writer's base epoch on drop, so a panicking build never
/// pins the chain forever.
struct Intent<'a> {
    chain: &'a EpochChain,
    epoch: u64,
}

impl Intent<'_> {
    /// Move this writer's registration to a new base epoch (conflict retry).
    fn rebase(&mut self, new_epoch: u64) {
        let mut writers = lock(&self.chain.writers);
        deregister(&mut writers, self.epoch);
        *writers.entry(new_epoch).or_insert(0) += 1;
        self.epoch = new_epoch;
    }
}

impl Drop for Intent<'_> {
    fn drop(&mut self) {
        deregister(&mut lock(&self.chain.writers), self.epoch);
    }
}

fn deregister(writers: &mut BTreeMap<u64, usize>, epoch: u64) {
    if let Some(count) = writers.get_mut(&epoch) {
        *count -= 1;
        if *count == 0 {
            writers.remove(&epoch);
        }
    }
}

impl EpochChain {
    /// A chain rooted at an arbitrary epoch number — recovery reopens a
    /// database at the epoch its log replayed to, and commits continue the
    /// numbering from there (so re-logged epochs line up with the log).
    pub fn new_at(instance: Arc<SpatialInstance>, epoch: u64) -> Self {
        let root = EpochState {
            epoch,
            instance,
            changed: BTreeSet::new(),
            built: OnceLock::new(),
            flat: OnceLock::new(),
            prev: Mutex::new(None),
        };
        EpochChain { head: ArcSwap::new(Arc::new(root)), writers: Mutex::new(BTreeMap::new()) }
    }

    /// The current head epoch — one atomic load plus an `Arc` bump, no lock.
    pub fn head(&self) -> Arc<EpochState> {
        self.head.load()
    }

    /// Commit a batch: the three-stage pipeline described in the module
    /// docs. Returns the epoch the batch published (or the base epoch, if
    /// the batch changed nothing). Fails only on durability errors
    /// ([`crate::TopoDbError::Degraded`]): the intent deregisters, the
    /// head is untouched, and readers never observe the attempt.
    ///
    /// With `durability` attached, stage 3 runs the **log-before-publish**
    /// protocol: the publish serializes on the WAL publish lock, re-checks
    /// that the head is still this attempt's base, appends the batch to
    /// the log, and only then swaps the head. The head check under the
    /// lock makes the compare-exchange infallible for the attempt that
    /// logged, so a batch is appended exactly once — on its winning
    /// attempt — and a record hits the log strictly before the epoch it
    /// describes becomes visible to readers. A stale head is discovered
    /// *before* the append, so losing attempts log nothing and take the
    /// ordinary conflict path.
    pub fn commit(
        &self,
        ops: Vec<Op>,
        counters: &BuildCounters,
        durability: Option<&crate::durability::Durability>,
    ) -> Result<CommitSummary, crate::TopoDbError> {
        // Stage 1 — write intent: adopt the head as base and register it,
        // both under the writers mutex, so the chain stays walkable down to
        // this base however many commits land first.
        let (base, mut intent) = {
            let mut writers = lock(&self.writers);
            let base = self.head.load();
            *writers.entry(base.epoch).or_insert(0) += 1;
            let epoch = base.epoch;
            (base, Intent { chain: self, epoch })
        };

        // Stage 2 — build outside any lock.
        let (next_instance, mut changed) = apply_ops(&base.instance, &ops);
        if changed.is_empty() {
            return Ok(CommitSummary { epoch: base.epoch, changed });
        }
        let mut next_instance = Arc::new(next_instance);
        let mut changed_set: BTreeSet<String> = changed.iter().cloned().collect();

        let mut current_base = base;
        let mut built = {
            let base_components = current_base.built_opt().map(|b| &b.components);
            build_epoch(
                current_base.epoch + 1,
                &next_instance,
                |key: &[String]| {
                    if key.iter().any(|n| changed_set.contains(n)) {
                        return None;
                    }
                    base_components.and_then(|c| c.get(key)).cloned()
                },
                counters,
            )
        };

        // Stage 3 — publish, retrying on conflict.
        loop {
            let cell = OnceLock::new();
            let _ = cell.set(built);
            let next = Arc::new(EpochState {
                epoch: current_base.epoch + 1,
                instance: Arc::clone(&next_instance),
                changed: changed_set.clone(),
                built: cell,
                flat: OnceLock::new(),
                prev: Mutex::new(Some(Arc::clone(&current_base))),
            });
            let published = match durability {
                None => self.head.compare_exchange(&current_base, Arc::clone(&next)).is_ok(),
                Some(d) => {
                    // Log-before-publish: serialize publishes, verify the
                    // head is still our base, append, then swap. The swap
                    // cannot fail — every publisher of this database holds
                    // the same lock — so the record and the epoch commit
                    // or skip together.
                    let _publishing = lock(&d.publish_lock);
                    if Arc::ptr_eq(&self.head.load(), &current_base) {
                        // A durability failure aborts the commit cleanly:
                        // nothing was published, the intent guard
                        // deregisters on drop, and readers stay on the old
                        // head.
                        d.log_batch(next.epoch, &ops, &changed, &next_instance)?;
                        self.head
                            .compare_exchange(&current_base, Arc::clone(&next))
                            .expect("head swap serialized under the WAL publish lock");
                        true
                    } else {
                        false
                    }
                }
            };
            match published {
                true => {
                    drop(intent);
                    self.prune(&next);
                    return Ok(CommitSummary { epoch: next.epoch, changed });
                }
                false => {
                    counters.publish_conflicts.fetch_add(1, Ordering::Relaxed);
                    // `next` was never published: recover this attempt's
                    // build before `next` is dropped.
                    let own_components =
                        next.built.get().expect("unpublished epoch keeps its build").components.clone();
                    let new_head = self.head.load();
                    // Names changed between our stale base and the new head
                    // (None if the walk cannot reach the base — defensive:
                    // registration makes that unreachable in practice).
                    let intervening = intervening_changes(&new_head, current_base.epoch);
                    intent.rebase(new_head.epoch);
                    // Re-apply the batch against the new head: the published
                    // instance must carry the intervening commits' changes,
                    // and this batch's own effect can shrink against the new
                    // base (e.g. a removal an intervening commit already
                    // performed).
                    let (rebased_instance, rebased_changed) =
                        apply_ops(&new_head.instance, &ops);
                    if rebased_changed.is_empty() {
                        return Ok(CommitSummary { epoch: new_head.epoch, changed: rebased_changed });
                    }
                    next_instance = Arc::new(rebased_instance);
                    changed = rebased_changed;
                    changed_set = changed.iter().cloned().collect();
                    let head_components =
                        new_head.built_opt().map(|b| b.components.clone()).unwrap_or_default();
                    let changed_now = &changed_set;
                    built = build_epoch(
                        new_head.epoch + 1,
                        &next_instance,
                        |key: &[String]| {
                            // The new head's component is valid unless this
                            // commit changed one of its regions...
                            if !key.iter().any(|n| changed_now.contains(n)) {
                                if let Some(c) = head_components.get(key) {
                                    return Some(Arc::clone(c));
                                }
                            }
                            // ...and this attempt's own component is valid
                            // unless an intervening commit did.
                            match &intervening {
                                Some(names) if !key.iter().any(|n| names.contains(n)) => {
                                    own_components.get(key).cloned()
                                }
                                _ => None,
                            }
                        },
                        counters,
                    );
                    current_base = new_head;
                }
            }
        }
    }

    /// Sever the `prev` chain below the minimum in-flight writer base (or
    /// below the head itself when no writer is in flight). Runs under the
    /// writers mutex — the same lock registration takes *before* adopting a
    /// base — so no writer can be about to walk below the cut.
    fn prune(&self, head: &EpochState) {
        let writers = lock(&self.writers);
        let keep_from = writers.keys().next().copied().unwrap_or(head.epoch);
        let mut cursor = {
            if head.epoch <= keep_from {
                return;
            }
            let guard = lock(&head.prev);
            match &*guard {
                Some(prev) => Arc::clone(prev),
                None => return,
            }
        };
        loop {
            if cursor.epoch <= keep_from {
                // Everything strictly below `cursor` is unreachable by any
                // in-flight writer: cut here.
                *lock(&cursor.prev) = None;
                return;
            }
            let next = match &*lock(&cursor.prev) {
                Some(prev) => Arc::clone(prev),
                None => return,
            };
            cursor = next;
        }
    }
}

/// Union of the `changed` sets of every epoch in `(to_epoch, from]`,
/// walking `prev` links; `None` if the walk hits a severed link first.
fn intervening_changes(from: &Arc<EpochState>, to_epoch: u64) -> Option<BTreeSet<String>> {
    let mut acc = BTreeSet::new();
    let mut cursor = Arc::clone(from);
    while cursor.epoch > to_epoch {
        acc.extend(cursor.changed.iter().cloned());
        let prev = lock(&cursor.prev).clone();
        match prev {
            Some(p) => cursor = p,
            None => return None,
        }
    }
    (cursor.epoch == to_epoch).then_some(acc)
}
