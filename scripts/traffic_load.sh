#!/usr/bin/env bash
# Open-loop traffic driver for the topodb facade.
#
# Thin wrapper around the `traffic` bench (crates/bench/benches/traffic.rs):
# replays a mixed snapshot-read / prepared-query / write-transaction
# workload from many client threads at a configured per-client arrival
# rate, then prints the per-class p50/p99 latency report. Latency is
# measured from each operation's *scheduled* arrival time, so a server
# that falls behind shows the backlog as queueing delay instead of
# silently throttling the offered load.
#
# Usage: scripts/traffic_load.sh [clients [rate [ops [mix [map [wal [sync [fault_rate]]]]]]]]
#
#   clients  concurrent client threads      (default: min(cores, 8), >= 2)
#   rate     ops/second offered per client  (default: 200)
#   ops      operations issued per client   (default: 400)
#   mix      workload shape                 (read-heavy | txn-heavy;
#                                            default: read-heavy, 60/30/10
#                                            read/query/txn; txn-heavy is
#                                            30/30/40 — the commit pipeline
#                                            under pressure)
#   map      base map                       (small | clustered4096;
#                                            default: small, 8 clusters x 4
#                                            regions; clustered4096 is 64
#                                            clusters x 64 regions = 4096
#                                            base regions)
#   wal      durability                     (off | on; default: off. `on`
#                                            commits through a write-ahead
#                                            log in a throwaway temp dir,
#                                            so the txn-class p50/p99
#                                            include the append + sync)
#   sync     wal sync policy                (percommit | interval; default:
#                                            percommit, an fsync inside
#                                            every commit; interval group-
#                                            commits with at most one fsync
#                                            per 5 ms window)
#   fault_rate  storage chaos                (0.0..1.0; default: 0. Non-zero
#                                            moves the log onto the
#                                            in-memory fault-injecting
#                                            SimFs backend and fails each
#                                            log write transiently with
#                                            this probability; the report
#                                            gains traffic/wal/* retry and
#                                            degradation counters)
#
# The backend follows TOPODB_EPOCH_CHAIN (chain by default; set `off` to
# drive the legacy RwLock cache for comparison).
#
# The machine-readable {id, value} records land in the file named by
# $BENCH_JSON if set (default: a temp file, printed at exit). To fold a
# run into the committed perf trajectory use scripts/bench_snapshot.sh,
# which runs this harness at the defaults.

set -euo pipefail

cd "$(dirname "$0")/.."

out="${BENCH_JSON:-$(mktemp /tmp/traffic_XXXX.json)}"
case "${out}" in
    /*) abs_out="${out}" ;;
    *) abs_out="$(pwd)/${out}" ;;
esac

env_args=()
[ "$#" -ge 1 ] && env_args+=("TRAFFIC_CLIENTS=$1")
[ "$#" -ge 2 ] && env_args+=("TRAFFIC_RATE=$2")
[ "$#" -ge 3 ] && env_args+=("TRAFFIC_OPS=$3")
[ "$#" -ge 4 ] && env_args+=("TRAFFIC_MIX=$4")
[ "$#" -ge 5 ] && env_args+=("TRAFFIC_MAP=$5")
[ "$#" -ge 6 ] && env_args+=("TRAFFIC_WAL=$6")
[ "$#" -ge 7 ] && env_args+=("TRAFFIC_SYNC=$7")
[ "$#" -ge 8 ] && env_args+=("TRAFFIC_FAULT_RATE=$8")

env "${env_args[@]+"${env_args[@]}"}" BENCH_JSON="${abs_out}" \
    cargo bench -p bench --bench traffic

echo "traffic records written to ${abs_out}" >&2
