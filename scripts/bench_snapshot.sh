#!/usr/bin/env bash
# Tracked perf trajectory for the arrangement benchmarks.
#
# Runs the splitting-phase scaling group (`splitting_sweep_vs_naive`), the
# incremental-maintenance groups (`incremental_update`, `batch_update`), the
# assembly groups (`assemble_view_vs_copy`, `parallel_cold_build`), the
# intra-component strip-sweep and phase-parallel groups (`strip_sweep`,
# `phase_build`, including seam-skew and per-phase work metrics), the
# open-query planner group (`planner_bindings`, including its work-counter
# metrics), the open-loop traffic harness (`traffic/*` p50/p99 latency
# metrics) and the epoch-publication group (`epoch_publish/*`: snapshot
# acquisition uncontended, commit+read, and read latency under a
# continuously committing writer, epoch chain vs the legacy RwLock), merges
# their machine-readable records into one snapshot
# (default: BENCH_arrangement.json at the repository root), and then
# compares the fresh run against the previously committed snapshot:
#
#   * every benchmark present in both runs gets a printed delta;
#   * a >25% slowdown in any `sweep/*`, `assemble_view_vs_copy/view/*`,
#     `strip_sweep/serial/*`, `phase_build/serial/*` or
#     `planner_bindings/planned/*` entry is a tracked regression and fails
#     the script (exit non-zero); the latency metrics `traffic/read/p99_ns`
#     and `epoch_publish/chain/read_under_write_p99_ns` are tracked too,
#     with a wider >150% threshold (open-loop tail latencies are noisier
#     than median ns/iter), as is `wal_commit/percommit/p50_ns` (fsync
#     latency varies with the host's storage stack);
#   * on multi-core hosts, snapshot acquisition under a continuously
#     committing writer must have a lower p99 on the epoch chain than on
#     the legacy RwLock cache (skipped on a single core, where the
#     "background" writer timeshares the only CPU with the readers and the
#     comparison measures the scheduler, not the lock structure);
#   * the sweep must still beat the naive splitter, the incremental update
#     path must beat the full rebuild, a k-insert transaction must beat k
#     sequential insert+read rounds, and the zero-copy view assembly must
#     beat the copying assembly, at the largest sizes;
#   * on multi-core hosts, the parallel cold build on all threads must beat
#     the single-thread build, the strip-decomposed sweep on all threads
#     must beat the monolithic sweep by >1.5x on the dense single-component
#     map, and the phase-parallel pipeline must beat the strips-only build
#     by >1.3x on hosts with 4+ cores (a simple win on 2-3 cores; all
#     skipped on single-core hosts, where no speedup is possible);
#   * the semi-join planner must beat the cartesian-product enumerator by
#     >10x on the anchored 2-variable open query at the largest size;
#   * the crossing-density seam model's event skew must not exceed the
#     endpoint-quantile baseline's at the largest strip-sweep size;
#   * durability must be affordable: the per-commit-fsync commit p50 must
#     stay within 20x of the in-memory commit p50 at 256 regions, and the
#     interval (group-commit) policy must recover most of that cost
#     (beat the per-commit p50, or land within 3x of in-memory).
#
# Usage: scripts/bench_snapshot.sh [output.json]
#
# The benchmark harness (vendor/criterion) emits machine-readable records to
# the path named by $BENCH_JSON: an array of
#   {"id": "<group>/<benchmark>", "ns_per_iter": <median>, "samples": <n>}.

set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_arrangement.json}"
# The bench binary runs with the package directory as cwd, so hand it an
# absolute path.
case "${out}" in
    /*) abs_out="${out}" ;;
    *) abs_out="$(pwd)/${out}" ;;
esac

# Keep the committed snapshot around as the trajectory baseline.
baseline=""
if [ -s "${out}" ]; then
    baseline="$(mktemp)"
    cp "${out}" "${baseline}"
fi

scaling_json="$(mktemp)"
incremental_json="$(mktemp)"
assembly_json="$(mktemp)"
strip_json="$(mktemp)"
planner_json="$(mktemp)"
traffic_json="$(mktemp)"
epoch_json="$(mktemp)"
wal_json="$(mktemp)"
trap 'rm -f "${scaling_json}" "${incremental_json}" "${assembly_json}" "${strip_json}" "${planner_json}" "${traffic_json}" "${epoch_json}" "${wal_json}" ${baseline:+"${baseline}"}' EXIT

echo "running splitting_sweep_vs_naive scaling group" >&2
BENCH_JSON="${scaling_json}" cargo bench -p bench --bench scaling -- splitting_sweep_vs_naive
echo "running incremental_update and batch_update groups" >&2
BENCH_JSON="${incremental_json}" cargo bench -p bench --bench incremental
echo "running assemble_view_vs_copy and parallel_cold_build groups" >&2
BENCH_JSON="${assembly_json}" cargo bench -p bench --bench assembly
echo "running strip_sweep and phase_build groups" >&2
BENCH_JSON="${strip_json}" cargo bench -p bench --bench strip
echo "running planner_bindings group" >&2
BENCH_JSON="${planner_json}" cargo bench -p bench --bench planner
echo "running open-loop traffic harness" >&2
BENCH_JSON="${traffic_json}" cargo bench -p bench --bench traffic
echo "running epoch_publish group (chain vs rwlock snapshot publication)" >&2
BENCH_JSON="${epoch_json}" cargo bench -p bench --bench epoch_publish
echo "running wal_commit group (durable commit latency per sync policy)" >&2
BENCH_JSON="${wal_json}" cargo bench -p bench --bench wal

# Merge the JSON arrays (each file is one record per line between the
# bracket lines, so a line-level merge is exact).
{
    echo "["
    {
        sed -e '1d' -e '$d' "${scaling_json}"
        sed -e '1d' -e '$d' "${incremental_json}"
        sed -e '1d' -e '$d' "${assembly_json}"
        sed -e '1d' -e '$d' "${strip_json}"
        sed -e '1d' -e '$d' "${planner_json}"
        sed -e '1d' -e '$d' "${traffic_json}"
        sed -e '1d' -e '$d' "${epoch_json}"
        sed -e '1d' -e '$d' "${wal_json}"
    } | sed -e 's/},\{0,1\}$/},/' -e '$ s/},$/}/'
    echo "]"
} > "${abs_out}"

if [ ! -s "${out}" ]; then
    echo "error: ${out} was not written" >&2
    exit 1
fi

extract_ns() { # file id -> ns_per_iter (empty if absent)
    grep -F "\"id\": \"$2\"" "$1" | grep -o '"ns_per_iter": [0-9.]*' | grep -o '[0-9.]*$' | head -1
}

# Sanity 1: the sweep beats the naive splitter at the largest grid size.
largest=$({ grep -o '"id": "[^"]*"' "${out}" || true; } | sed -n 's/.*naive\/grid\///; s/"//p' | sort -n | tail -1)
sweep_ns=$(extract_ns "${out}" "splitting_sweep_vs_naive/sweep/grid/${largest}")
naive_ns=$(extract_ns "${out}" "splitting_sweep_vs_naive/naive/grid/${largest}")
if [ -n "${sweep_ns}" ] && [ -n "${naive_ns}" ]; then
    faster=$(awk -v s="${sweep_ns}" -v n="${naive_ns}" 'BEGIN { print (s < n) ? "yes" : "no" }')
    echo "largest grid n=${largest}: sweep=${sweep_ns} ns, naive=${naive_ns} ns, sweep faster: ${faster}" >&2
    if [ "${faster}" != "yes" ]; then
        echo "error: sweep did not beat the naive splitter at n=${largest}" >&2
        exit 1
    fi
fi

# Sanity 2: incremental update -> read beats the full rebuild at the largest
# clustered size.
largest_inc=$({ grep -o '"id": "incremental_update/incremental/[0-9]*"' "${out}" || true; } \
    | grep -o '[0-9]*"' | tr -d '"' | sort -n | tail -1)
if [ -n "${largest_inc}" ]; then
    inc_ns=$(extract_ns "${out}" "incremental_update/incremental/${largest_inc}")
    full_ns=$(extract_ns "${out}" "incremental_update/full_rebuild/${largest_inc}")
    speedup=$(awk -v i="${inc_ns}" -v f="${full_ns}" 'BEGIN { printf "%.2f", f / i }')
    echo "incremental update at n=${largest_inc}: ${inc_ns} ns vs full rebuild ${full_ns} ns (${speedup}x)" >&2
    if [ "$(awk -v i="${inc_ns}" -v f="${full_ns}" 'BEGIN { print (i < f) ? "yes" : "no" }')" != "yes" ]; then
        echo "error: incremental update did not beat the full rebuild at n=${largest_inc}" >&2
        exit 1
    fi
fi

# Sanity 2b: a k-insert transaction followed by one read beats k sequential
# insert+read rounds at the largest clustered size (the batched write path).
largest_batch=$({ grep -o '"id": "batch_update/batch/[0-9]*"' "${out}" || true; } \
    | grep -o '[0-9]*"' | tr -d '"' | sort -n | tail -1)
if [ -n "${largest_batch}" ]; then
    batch_ns=$(extract_ns "${out}" "batch_update/batch/${largest_batch}")
    seq_ns=$(extract_ns "${out}" "batch_update/sequential/${largest_batch}")
    speedup=$(awk -v b="${batch_ns}" -v s="${seq_ns}" 'BEGIN { printf "%.2f", s / b }')
    echo "batch update at n=${largest_batch}: ${batch_ns} ns vs sequential ${seq_ns} ns (${speedup}x)" >&2
    if [ "$(awk -v b="${batch_ns}" -v s="${seq_ns}" 'BEGIN { print (b < s) ? "yes" : "no" }')" != "yes" ]; then
        echo "error: the batched transaction did not beat sequential inserts at n=${largest_batch}" >&2
        exit 1
    fi
fi

# Sanity 3: zero-copy view assembly beats the copying assembly at the
# largest component count.
largest_asm=$({ grep -o '"id": "assemble_view_vs_copy/view/[0-9]*"' "${out}" || true; } \
    | grep -o '[0-9]*"' | tr -d '"' | sort -n | tail -1)
if [ -n "${largest_asm}" ]; then
    view_ns=$(extract_ns "${out}" "assemble_view_vs_copy/view/${largest_asm}")
    copy_ns=$(extract_ns "${out}" "assemble_view_vs_copy/copy/${largest_asm}")
    speedup=$(awk -v v="${view_ns}" -v c="${copy_ns}" 'BEGIN { printf "%.2f", c / v }')
    echo "view assembly at ${largest_asm} components: ${view_ns} ns vs copy ${copy_ns} ns (${speedup}x)" >&2
    if [ "$(awk -v v="${view_ns}" -v c="${copy_ns}" 'BEGIN { print (v < c) ? "yes" : "no" }')" != "yes" ]; then
        echo "error: view assembly did not beat the copying assembly at ${largest_asm} components" >&2
        exit 1
    fi
fi

# Sanity 4: the parallel cold build shows a measurable (>= 1.05x) speedup
# over the serial one — only meaningful on multi-core hosts; on a
# single-core host the extra-thread series measure pool overhead instead,
# so the gate is skipped there.
cores=$( (nproc || getconf _NPROCESSORS_ONLN || echo 1) 2>/dev/null | head -1 )
largest_par=$({ grep -o '"id": "parallel_cold_build/threads1/[0-9]*"' "${out}" || true; } \
    | grep -o '[0-9]*"' | tr -d '"' | sort -n | tail -1)
if [ -n "${largest_par}" ] && [ "${cores}" -gt 1 ]; then
    t1_ns=$(extract_ns "${out}" "parallel_cold_build/threads1/${largest_par}")
    tmax_ns=$(extract_ns "${out}" "parallel_cold_build/threadsmax/${largest_par}")
    speedup=$(awk -v a="${t1_ns}" -v b="${tmax_ns}" 'BEGIN { printf "%.2f", a / b }')
    echo "parallel cold build at n=${largest_par}: 1 thread ${t1_ns} ns vs max threads ${tmax_ns} ns (${speedup}x on ${cores} cores)" >&2
    if [ "$(awk -v a="${t1_ns}" -v b="${tmax_ns}" 'BEGIN { print (b * 1.05 < a) ? "yes" : "no" }')" != "yes" ]; then
        echo "error: parallel cold build shows no measurable speedup over serial on a ${cores}-core host" >&2
        exit 1
    fi
elif [ -n "${largest_par}" ]; then
    echo "single-core host (${cores}): skipping the parallel cold-build speedup gate (series measure pool overhead here)" >&2
fi

# Sanity 5: the intra-component strip sweep on all threads beats the
# monolithic sweep on the dense single-component map — the workload where
# component-level parallelism cannot help. The required margin scales with
# the hardware: >1.5x on hosts with 4+ cores; on 2-3 cores (where the ideal
# ceiling is 2-3x and the serial stitching/seeding fraction makes 1.5x
# marginal) the strip path must simply win. On a single-core host every
# strip series measures decomposition overhead, so the gate is skipped.
largest_strip=$({ grep -o '"id": "strip_sweep/serial/[0-9]*"' "${out}" || true; } \
    | grep -o '[0-9]*"' | tr -d '"' | sort -n | tail -1)
if [ -n "${largest_strip}" ] && [ "${cores}" -gt 1 ]; then
    serial_ns=$(extract_ns "${out}" "strip_sweep/serial/${largest_strip}")
    smax_ns=$(extract_ns "${out}" "strip_sweep/threadsmax/${largest_strip}")
    if [ "${cores}" -ge 4 ]; then margin="1.5"; else margin="1.0"; fi
    speedup=$(awk -v a="${serial_ns}" -v b="${smax_ns}" 'BEGIN { printf "%.2f", a / b }')
    echo "strip sweep at n=${largest_strip}: serial ${serial_ns} ns vs max threads ${smax_ns} ns (${speedup}x on ${cores} cores, required >${margin}x)" >&2
    if [ "$(awk -v a="${serial_ns}" -v b="${smax_ns}" -v m="${margin}" 'BEGIN { print (b * m < a) ? "yes" : "no" }')" != "yes" ]; then
        echo "error: strip sweep speedup not above ${margin}x over the monolithic sweep on a ${cores}-core host" >&2
        exit 1
    fi
elif [ -n "${largest_strip}" ]; then
    echo "single-core host (${cores}): skipping the strip-sweep speedup gate (series measure decomposition overhead here)" >&2
fi

# Sanity 6: the semi-join planner beats the cartesian-product enumerator by
# >10x on the anchored 2-variable open query at the largest benched size,
# and its work counters confirm the pruning (strictly fewer assignments
# tried than naive).
extract_value() { # file id -> value (empty if absent)
    grep -F "\"id\": \"$2\"" "$1" | grep -o '"value": [0-9.]*' | grep -o '[0-9.]*$' | head -1
}
largest_plan=$({ grep -o '"id": "planner_bindings/naive/[0-9]*"' "${out}" || true; } \
    | grep -o '[0-9]*"' | tr -d '"' | sort -n | tail -1)
if [ -n "${largest_plan}" ]; then
    planned_ns=$(extract_ns "${out}" "planner_bindings/planned/${largest_plan}")
    naive_ns=$(extract_ns "${out}" "planner_bindings/naive/${largest_plan}")
    speedup=$(awk -v p="${planned_ns}" -v n="${naive_ns}" 'BEGIN { printf "%.1f", n / p }')
    echo "planner at n=${largest_plan}: planned ${planned_ns} ns vs naive ${naive_ns} ns (${speedup}x, required >10x)" >&2
    if [ "$(awk -v p="${planned_ns}" -v n="${naive_ns}" 'BEGIN { print (p * 10 < n) ? "yes" : "no" }')" != "yes" ]; then
        echo "error: the planner did not beat the naive enumerator by >10x at n=${largest_plan}" >&2
        exit 1
    fi
    planned_work=$(extract_value "${out}" "planner_bindings/assignments_planned/${largest_plan}")
    naive_work=$(extract_value "${out}" "planner_bindings/assignments_naive/${largest_plan}")
    probes=$(extract_value "${out}" "planner_bindings/index_probes/${largest_plan}")
    echo "planner work at n=${largest_plan}: ${planned_work} assignments (naive ${naive_work}), ${probes} index probes" >&2
    if [ -n "${planned_work}" ] && [ -n "${naive_work}" ]; then
        if [ "$(awk -v p="${planned_work}" -v n="${naive_work}" 'BEGIN { print (p < n) ? "yes" : "no" }')" != "yes" ]; then
            echo "error: the planner tried no fewer assignments than the naive enumerator" >&2
            exit 1
        fi
    fi
fi

# Sanity 7: the phase-parallel pipeline (parallel chain merge, face walks,
# labels and cell assembly downstream of the strip split) beats the
# strips-only build of the dense single-component map. Margin scales with
# the hardware like the strip gate: >1.3x on 4+ cores, a simple win on 2-3
# cores, skipped on single-core hosts (where both series measure pool
# overhead).
largest_phase=$({ grep -o '"id": "phase_build/strips_only/[0-9]*"' "${out}" || true; } \
    | grep -o '[0-9]*"' | tr -d '"' | sort -n | tail -1)
if [ -n "${largest_phase}" ] && [ "${cores}" -gt 1 ]; then
    strips_ns=$(extract_ns "${out}" "phase_build/strips_only/${largest_phase}")
    phases_ns=$(extract_ns "${out}" "phase_build/phase_parallel/${largest_phase}")
    if [ "${cores}" -ge 4 ]; then pmargin="1.3"; else pmargin="1.0"; fi
    speedup=$(awk -v a="${strips_ns}" -v b="${phases_ns}" 'BEGIN { printf "%.2f", a / b }')
    echo "phase-parallel build at n=${largest_phase}: strips-only ${strips_ns} ns vs phase-parallel ${phases_ns} ns (${speedup}x on ${cores} cores, required >${pmargin}x)" >&2
    if [ "$(awk -v a="${strips_ns}" -v b="${phases_ns}" -v m="${pmargin}" 'BEGIN { print (b * m < a) ? "yes" : "no" }')" != "yes" ]; then
        echo "error: phase-parallel build speedup not above ${pmargin}x over strips-only on a ${cores}-core host" >&2
        exit 1
    fi
elif [ -n "${largest_phase}" ]; then
    echo "single-core host (${cores}): skipping the phase-parallel speedup gate (series measure pool overhead here)" >&2
fi

# Sanity 8: the crossing-density seam model balances the per-strip event
# mass at least as well as the retired endpoint-quantile baseline at the
# largest strip-sweep size (skew = max/mean per-strip events; both counts
# are deterministic, so the comparison is exact).
largest_skew=$({ grep -o '"id": "strip_sweep/seam_skew_cost/[0-9]*"' "${out}" || true; } \
    | grep -o '[0-9]*"' | tr -d '"' | sort -n | tail -1)
if [ -n "${largest_skew}" ]; then
    cost_skew=$(extract_value "${out}" "strip_sweep/seam_skew_cost/${largest_skew}")
    quantile_skew=$(extract_value "${out}" "strip_sweep/seam_skew_quantile/${largest_skew}")
    echo "seam skew at n=${largest_skew}: cost model ${cost_skew} vs quantile ${quantile_skew} (max/mean per-strip events)" >&2
    if [ "$(awk -v c="${cost_skew}" -v q="${quantile_skew}" 'BEGIN { print (c <= q) ? "yes" : "no" }')" != "yes" ]; then
        echo "error: the cost-model seams are more skewed than the quantile baseline at n=${largest_skew}" >&2
        exit 1
    fi
fi

# Sanity 9: the open-loop traffic harness produced coherent latency
# records for the mixed stream (p50 present and <= p99). Latency absolutes
# are host- and load-dependent, so they are recorded for the trajectory
# but not gated.
traffic_p50=$(extract_value "${out}" "traffic/mixed/p50_ns")
traffic_p99=$(extract_value "${out}" "traffic/mixed/p99_ns")
if [ -n "${traffic_p50}" ] && [ -n "${traffic_p99}" ]; then
    offered=$(extract_value "${out}" "traffic/offered_ops_per_s")
    achieved=$(extract_value "${out}" "traffic/achieved_ops_per_s")
    echo "traffic mixed stream: p50 ${traffic_p50} ns, p99 ${traffic_p99} ns (offered ${offered} ops/s, achieved ${achieved} ops/s)" >&2
    if [ "$(awk -v a="${traffic_p50}" -v b="${traffic_p99}" 'BEGIN { print (a <= b) ? "yes" : "no" }')" != "yes" ]; then
        echo "error: traffic p50 exceeds p99 — the latency accounting is broken" >&2
        exit 1
    fi
else
    echo "error: the traffic harness recorded no mixed-stream percentiles" >&2
    exit 1
fi

# Sanity 10: epoch-chain snapshot publication. The epoch_publish group must
# have recorded read-under-write percentiles for both backends, and on
# multi-core hosts the chain's p99 must beat the RwLock's — the headline
# claim: readers never wait on a writer's lock or pay its re-sweep inline.
# On a single core the "background" writer timeshares the only CPU with the
# sampling reader, so the comparison measures the scheduler and is skipped.
chain_p99=$(extract_value "${out}" "epoch_publish/chain/read_under_write_p99_ns")
rwlock_p99=$(extract_value "${out}" "epoch_publish/rwlock/read_under_write_p99_ns")
if [ -z "${chain_p99}" ] || [ -z "${rwlock_p99}" ]; then
    echo "error: epoch_publish recorded no read-under-write percentiles" >&2
    exit 1
fi
echo "read under write p99: chain ${chain_p99} ns vs rwlock ${rwlock_p99} ns" >&2
if [ "${cores}" -gt 1 ]; then
    if [ "$(awk -v c="${chain_p99}" -v r="${rwlock_p99}" 'BEGIN { print (c < r) ? "yes" : "no" }')" != "yes" ]; then
        echo "error: the epoch chain's read-under-write p99 did not beat the RwLock's on a ${cores}-core host" >&2
        exit 1
    fi
else
    echo "single-core host (${cores}): skipping the chain-beats-lock gate (writer and readers timeshare one CPU)" >&2
fi

# Sanity 11: durability is affordable. The per-commit-fsync policy must
# keep its commit p50 within 20x of the in-memory commit p50 at 256
# regions, and the interval (group-commit) policy must recover most of the
# fsync cost: beat the per-commit p50 outright, or land within 3x of the
# in-memory p50 (on hosts whose storage stack makes fsync nearly free, the
# two policies are statistically tied, which the second arm accepts).
inmem_p50=$(extract_value "${out}" "wal_commit/inmem/p50_ns")
percommit_p50=$(extract_value "${out}" "wal_commit/percommit/p50_ns")
interval_p50=$(extract_value "${out}" "wal_commit/interval/p50_ns")
if [ -z "${inmem_p50}" ] || [ -z "${percommit_p50}" ] || [ -z "${interval_p50}" ]; then
    echo "error: wal_commit recorded no commit percentiles" >&2
    exit 1
fi
overhead=$(awk -v i="${inmem_p50}" -v p="${percommit_p50}" 'BEGIN { printf "%.2f", p / i }')
echo "durable commit p50: inmem ${inmem_p50} ns, percommit ${percommit_p50} ns (${overhead}x), interval ${interval_p50} ns" >&2
if [ "$(awk -v i="${inmem_p50}" -v p="${percommit_p50}" 'BEGIN { print (p < i * 20) ? "yes" : "no" }')" != "yes" ]; then
    echo "error: per-commit-fsync commit p50 exceeds 20x the in-memory commit p50" >&2
    exit 1
fi
if [ "$(awk -v i="${inmem_p50}" -v p="${percommit_p50}" -v g="${interval_p50}"         'BEGIN { print (g < p || g < i * 3) ? "yes" : "no" }')" != "yes" ]; then
    echo "error: the interval (group-commit) policy recovered none of the fsync cost" >&2
    exit 1
fi

# Perf trajectory: per-benchmark deltas against the committed snapshot; a
# >25% slowdown in any sweep/*, assemble_view_vs_copy/view/*,
# strip_sweep/serial/*, phase_build/serial/* or planner_bindings/planned/*
# entry fails. The latency metrics traffic/read/p99_ns,
# epoch_publish/chain/read_under_write_p99_ns and wal_commit/percommit/p50_ns
# are tracked with a wider >150% threshold (open-loop p99s and fsync
# latencies are far noisier than median ns/iter).
# Other work-metric records ({id, value}) are informational and not gated
# here (the planner's assignments-tried gate above covers them).
if [ -n "${baseline}" ]; then
    echo "--- perf trajectory vs committed snapshot ---" >&2
    awk '
        function parse_line(line,   id, ns) {
            if (match(line, /"id": "[^"]*"/)) {
                id = substr(line, RSTART + 7, RLENGTH - 8)
                if (match(line, /"ns_per_iter": [0-9.]*/)) {
                    ns = substr(line, RSTART + 15, RLENGTH - 15)
                    return id SUBSEP ns
                }
                # Latency metrics gated on the trajectory ride the same
                # parse: their records carry "value" instead of
                # "ns_per_iter".
                if ((id == "traffic/read/p99_ns" || id == "epoch_publish/chain/read_under_write_p99_ns" \
                     || id == "wal_commit/percommit/p50_ns") \
                    && match(line, /"value": [0-9.]*/)) {
                    ns = substr(line, RSTART + 9, RLENGTH - 9)
                    return id SUBSEP ns
                }
            }
            return ""
        }
        NR == FNR { r = parse_line($0); if (r != "") { split(r, a, SUBSEP); old[a[1]] = a[2] } next }
        { r = parse_line($0); if (r != "") { split(r, a, SUBSEP); new[a[1]] = a[2]; order[++n] = a[1] } }
        END {
            regressions = 0
            for (i = 1; i <= n; i++) {
                id = order[i]
                if (!(id in old)) { printf "  %-55s %14.1f ns  (new)\n", id, new[id]; continue }
                delta = (new[id] - old[id]) / old[id] * 100
                flag = ""
                gated = index(id, "/sweep/") > 0 || index(id, "assemble_view_vs_copy/view/") > 0 \
                    || index(id, "strip_sweep/serial/") > 0 || index(id, "phase_build/serial/") > 0 \
                    || index(id, "planner_bindings/planned/") > 0
                lat_gated = id == "traffic/read/p99_ns" || id == "epoch_publish/chain/read_under_write_p99_ns" \
                    || id == "wal_commit/percommit/p50_ns"
                if (gated && delta > 25) { flag = "  REGRESSION"; regressions++ }
                if (lat_gated && delta > 150) { flag = "  REGRESSION"; regressions++ }
                printf "  %-55s %14.1f ns  (%+.1f%%)%s\n", id, new[id], delta, flag
            }
            if (regressions > 0) {
                printf "error: %d gated benchmark(s) regressed beyond their threshold\n", regressions
                exit 1
            }
        }
    ' "${baseline}" "${out}" >&2
else
    echo "no committed snapshot found; skipping trajectory comparison" >&2
fi

echo "wrote ${out}" >&2
