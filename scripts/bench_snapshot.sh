#!/usr/bin/env bash
# Run the arrangement-construction scaling benchmarks and write the results
# to BENCH_arrangement.json at the repository root — the perf-trajectory
# baseline for the splitting phase (Bentley–Ottmann sweep vs. naive oracle).
#
# Usage: scripts/bench_snapshot.sh [output.json]
#
# The benchmark harness (vendor/criterion) emits machine-readable records to
# the path named by $BENCH_JSON: an array of
#   {"id": "<group>/<benchmark>", "ns_per_iter": <median>, "samples": <n>}.

set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_arrangement.json}"
# The bench binary runs with the package directory as cwd, so hand it an
# absolute path.
case "${out}" in
    /*) abs_out="${out}" ;;
    *) abs_out="$(pwd)/${out}" ;;
esac

echo "running splitting_sweep_vs_naive scaling group -> ${out}" >&2
BENCH_JSON="${abs_out}" cargo bench -p bench --bench scaling -- splitting_sweep_vs_naive

# Sanity: the snapshot must exist, parse as a JSON array, and show the sweep
# beating the naive splitter at the largest construction size.
if [ ! -s "${out}" ]; then
    echo "error: ${out} was not written" >&2
    exit 1
fi

largest=$(grep -o '"id": "[^"]*"' "${out}" | sed 's/.*naive\/grid\///; s/"//' | sort -n | tail -1)
sweep_ns=$(grep "sweep/grid/${largest}\"" "${out}" | grep -o '"ns_per_iter": [0-9.]*' | grep -o '[0-9.]*$')
naive_ns=$(grep "naive/grid/${largest}\"" "${out}" | grep -o '"ns_per_iter": [0-9.]*' | grep -o '[0-9.]*$')
if [ -n "${sweep_ns}" ] && [ -n "${naive_ns}" ]; then
    faster=$(awk -v s="${sweep_ns}" -v n="${naive_ns}" 'BEGIN { print (s < n) ? "yes" : "no" }')
    echo "largest grid n=${largest}: sweep=${sweep_ns} ns, naive=${naive_ns} ns, sweep faster: ${faster}" >&2
    if [ "${faster}" != "yes" ]; then
        echo "error: sweep did not beat the naive splitter at n=${largest}" >&2
        exit 1
    fi
fi

echo "wrote ${out}" >&2
