#!/usr/bin/env bash
# Tracked perf trajectory for the arrangement benchmarks.
#
# Runs the splitting-phase scaling group (`splitting_sweep_vs_naive`) and the
# incremental-maintenance group (`incremental_update`), merges their
# machine-readable records into one snapshot (default:
# BENCH_arrangement.json at the repository root), and then compares the fresh
# run against the previously committed snapshot:
#
#   * every benchmark present in both runs gets a printed delta;
#   * a >25% slowdown in any `sweep/*` entry is a tracked regression and
#     fails the script (exit non-zero);
#   * the sweep must still beat the naive splitter, and the incremental
#     update path must beat the full rebuild, at the largest sizes.
#
# Usage: scripts/bench_snapshot.sh [output.json]
#
# The benchmark harness (vendor/criterion) emits machine-readable records to
# the path named by $BENCH_JSON: an array of
#   {"id": "<group>/<benchmark>", "ns_per_iter": <median>, "samples": <n>}.

set -euo pipefail

cd "$(dirname "$0")/.."
out="${1:-BENCH_arrangement.json}"
# The bench binary runs with the package directory as cwd, so hand it an
# absolute path.
case "${out}" in
    /*) abs_out="${out}" ;;
    *) abs_out="$(pwd)/${out}" ;;
esac

# Keep the committed snapshot around as the trajectory baseline.
baseline=""
if [ -s "${out}" ]; then
    baseline="$(mktemp)"
    cp "${out}" "${baseline}"
fi

scaling_json="$(mktemp)"
incremental_json="$(mktemp)"
trap 'rm -f "${scaling_json}" "${incremental_json}" ${baseline:+"${baseline}"}' EXIT

echo "running splitting_sweep_vs_naive scaling group" >&2
BENCH_JSON="${scaling_json}" cargo bench -p bench --bench scaling -- splitting_sweep_vs_naive
echo "running incremental_update group" >&2
BENCH_JSON="${incremental_json}" cargo bench -p bench --bench incremental -- incremental_update

# Merge the two JSON arrays (each file is one record per line between the
# bracket lines, so a line-level merge is exact).
{
    echo "["
    {
        sed -e '1d' -e '$d' "${scaling_json}"
        sed -e '1d' -e '$d' "${incremental_json}"
    } | sed -e 's/},\{0,1\}$/},/' -e '$ s/},$/}/'
    echo "]"
} > "${abs_out}"

if [ ! -s "${out}" ]; then
    echo "error: ${out} was not written" >&2
    exit 1
fi

extract_ns() { # file id -> ns_per_iter (empty if absent)
    grep -F "\"id\": \"$2\"" "$1" | grep -o '"ns_per_iter": [0-9.]*' | grep -o '[0-9.]*$' | head -1
}

# Sanity 1: the sweep beats the naive splitter at the largest grid size.
largest=$({ grep -o '"id": "[^"]*"' "${out}" || true; } | sed -n 's/.*naive\/grid\///; s/"//p' | sort -n | tail -1)
sweep_ns=$(extract_ns "${out}" "splitting_sweep_vs_naive/sweep/grid/${largest}")
naive_ns=$(extract_ns "${out}" "splitting_sweep_vs_naive/naive/grid/${largest}")
if [ -n "${sweep_ns}" ] && [ -n "${naive_ns}" ]; then
    faster=$(awk -v s="${sweep_ns}" -v n="${naive_ns}" 'BEGIN { print (s < n) ? "yes" : "no" }')
    echo "largest grid n=${largest}: sweep=${sweep_ns} ns, naive=${naive_ns} ns, sweep faster: ${faster}" >&2
    if [ "${faster}" != "yes" ]; then
        echo "error: sweep did not beat the naive splitter at n=${largest}" >&2
        exit 1
    fi
fi

# Sanity 2: incremental update -> read beats the full rebuild at the largest
# clustered size.
largest_inc=$({ grep -o '"id": "incremental_update/incremental/[0-9]*"' "${out}" || true; } \
    | grep -o '[0-9]*"' | tr -d '"' | sort -n | tail -1)
if [ -n "${largest_inc}" ]; then
    inc_ns=$(extract_ns "${out}" "incremental_update/incremental/${largest_inc}")
    full_ns=$(extract_ns "${out}" "incremental_update/full_rebuild/${largest_inc}")
    speedup=$(awk -v i="${inc_ns}" -v f="${full_ns}" 'BEGIN { printf "%.2f", f / i }')
    echo "incremental update at n=${largest_inc}: ${inc_ns} ns vs full rebuild ${full_ns} ns (${speedup}x)" >&2
    if [ "$(awk -v i="${inc_ns}" -v f="${full_ns}" 'BEGIN { print (i < f) ? "yes" : "no" }')" != "yes" ]; then
        echo "error: incremental update did not beat the full rebuild at n=${largest_inc}" >&2
        exit 1
    fi
fi

# Perf trajectory: per-benchmark deltas against the committed snapshot; a
# >25% slowdown in any sweep/* entry fails.
if [ -n "${baseline}" ]; then
    echo "--- perf trajectory vs committed snapshot ---" >&2
    awk '
        function parse_line(line,   id, ns) {
            if (match(line, /"id": "[^"]*"/)) {
                id = substr(line, RSTART + 7, RLENGTH - 8)
                if (match(line, /"ns_per_iter": [0-9.]*/)) {
                    ns = substr(line, RSTART + 15, RLENGTH - 15)
                    return id SUBSEP ns
                }
            }
            return ""
        }
        NR == FNR { r = parse_line($0); if (r != "") { split(r, a, SUBSEP); old[a[1]] = a[2] } next }
        { r = parse_line($0); if (r != "") { split(r, a, SUBSEP); new[a[1]] = a[2]; order[++n] = a[1] } }
        END {
            regressions = 0
            for (i = 1; i <= n; i++) {
                id = order[i]
                if (!(id in old)) { printf "  %-55s %14.1f ns  (new)\n", id, new[id]; continue }
                delta = (new[id] - old[id]) / old[id] * 100
                flag = ""
                if (index(id, "/sweep/") > 0 && delta > 25) { flag = "  REGRESSION"; regressions++ }
                printf "  %-55s %14.1f ns  (%+.1f%%)%s\n", id, new[id], delta, flag
            }
            if (regressions > 0) {
                printf "error: %d sweep/* benchmark(s) regressed by more than 25%%\n", regressions
                exit 1
            }
        }
    ' "${baseline}" "${out}" >&2
else
    echo "no committed snapshot found; skipping trajectory comparison" >&2
fi

echo "wrote ${out}" >&2
