//! Root package of the reproduction workspace.
//!
//! This crate intentionally contains no code of its own: it exists to host
//! the workspace-level integration tests (`tests/`) and runnable examples
//! (`examples/`). All functionality lives in the crates under `crates/`,
//! re-exported through the [`topodb`] facade.

pub use topodb;
