//! A land-use / GIS scenario: a parcel grid with an overlaid flood zone and a
//! protected wetland. Demonstrates the thematic bridge of Corollary 3.7:
//! once `thematic(I)` is computed, planning queries are answered as ordinary
//! relational (first-order) queries without touching the geometry again.
//!
//! Run with: `cargo run --example landuse_gis`

use topodb::query::ast::{Formula, NameTerm, RegionExpr};
use topodb::query::thematic_eval;
use topodb::relations::Relation4;
use topodb::spatial_core::prelude::*;
use topodb::TopoDatabase;

fn main() {
    // A 4x3 grid of parcels plus two overlay zones.
    let mut db = TopoDatabase::from_instance(datagen_grid(4, 3, 6));
    db.insert("FloodZone", Region::rect_from_ints(3, 3, 16, 9));
    db.insert("Wetland", Region::rect_from_ints(14, 2, 22, 10));

    println!("regions: {:?}", db.names());
    println!("{}", db.summary());

    // Geometric question answered relationally: which parcels are (partly)
    // in the flood zone? Answered on thematic(I) with a first-order query.
    let thematic = db.thematic();
    println!("\nParcels intersecting the flood zone (via thematic(I)):");
    for name in db.names() {
        if !name.starts_with('P') {
            continue;
        }
        let q = Formula::rel(
            Relation4::Overlap,
            RegionExpr::Ext(NameTerm::Const(name.clone())),
            RegionExpr::named("FloodZone"),
        );
        let overlaps = thematic_eval::eval_on_thematic(&thematic, &q).unwrap();
        if overlaps {
            println!("  {name}");
        }
    }

    // A topological integrity rule: no parcel may be completely inside the
    // wetland. Expressed with a name quantifier.
    let rule = "forallname a . not inside(ext(a), Wetland)";
    println!("\nintegrity rule `{rule}`: {:?}", db.query(rule).unwrap());

    // Flood planning: is there a dry corridor through the flood zone — a
    // region inside the flood zone avoiding the wetland? Every region of
    // this map is a rectangle, so the query lives in the paper's tractable
    // FO(Rect, Rect) fragment (Theorem 6.4) and is answered by the
    // rectangle evaluator; the generic cell-union evaluator would face an
    // exponential quantifier domain on an overlay map of this size.
    let corridor = "exists r . subset(r, FloodZone) and disjoint(r, Wetland)";
    let formula = topodb::query::parse(corridor).unwrap();
    let answer =
        topodb::query::rect_eval::eval_on_rect_instance(db.instance(), &formula).unwrap();
    println!("dry corridor inside flood zone: {answer:?}");
}

/// A small local copy of the datagen grid generator (examples avoid dev-only
/// dependencies).
fn datagen_grid(cols: usize, rows: usize, cell: i64) -> SpatialInstance {
    let mut inst = SpatialInstance::new();
    for r in 0..rows {
        for c in 0..cols {
            let x1 = c as i64 * cell;
            let y1 = r as i64 * cell;
            inst.insert(
                format!("P{r}{c}"),
                Region::rect_from_ints(x1, y1, x1 + cell, y1 + cell),
            );
        }
    }
    inst
}
