//! A land-use / GIS scenario: a parcel grid with an overlaid flood zone and a
//! protected wetland. Demonstrates the read/write split of the facade — the
//! overlays commit as one transaction — and the two set-returning query
//! paths: binding-producing prepared queries on a snapshot, and the thematic
//! bridge of Corollary 3.7, where the same bindings are computed as ordinary
//! relational (first-order) queries on `thematic(I)` without touching the
//! geometry again.
//!
//! Run with: `cargo run --example landuse_gis`

use topodb::query::ast::{Formula, NameTerm, RegionExpr};
use topodb::query::{thematic_eval, PreparedQuery};
use topodb::relations::Relation4;
use topodb::spatial_core::prelude::*;
use topodb::TopoDatabase;

fn main() {
    // A 4x3 grid of parcels plus two overlay zones, committed as one batch:
    // one epoch bump, one parallel re-sweep of the affected components.
    let mut db = TopoDatabase::from_instance(datagen_grid(4, 3, 6));
    let mut txn = db.begin();
    txn.insert("FloodZone", Region::rect_from_ints(3, 3, 16, 9));
    txn.insert("Wetland", Region::rect_from_ints(14, 2, 22, 10));
    let commit = txn.commit();
    println!("overlays committed as epoch {}", commit.epoch);

    let snap = db.snapshot();
    println!("regions: {:?}", snap.names());
    println!("{}", db.summary());

    // Which parcels are (partly) in the flood zone? One prepared query with
    // a free name variable returns all of them as bindings.
    let q = PreparedQuery::compile("overlap(ext(p), FloodZone)").unwrap();
    println!("\nParcels intersecting the flood zone (prepared query, snapshot):");
    for row in snap.evaluate(&q).unwrap().bindings().unwrap() {
        if row["p"].starts_with('P') {
            println!("  {}", row["p"]);
        }
    }

    // The same answer without geometry: evaluate the translated first-order
    // query against the thematic relational database (Corollary 3.7).
    let thematic = db.thematic();
    let atom = Formula::rel(
        Relation4::Overlap,
        RegionExpr::Ext(NameTerm::Var("p".into())),
        RegionExpr::named("FloodZone"),
    );
    let rows =
        thematic_eval::bindings_on_thematic(&thematic, &atom, &["p".to_string()]).unwrap();
    let parcels: Vec<&str> =
        rows.iter().map(|r| r["p"].as_str()).filter(|p| p.starts_with('P')).collect();
    println!("same answer via thematic(I): {parcels:?}");

    // A topological integrity rule: no parcel may be completely inside the
    // wetland. Expressed with a name quantifier.
    let rule = PreparedQuery::compile("forallname a . not inside(ext(a), Wetland)").unwrap();
    println!("\nintegrity rule `{}`: {}", rule.text().unwrap(), snap.evaluate(&rule).unwrap());

    // Flood planning: is there a dry corridor through the flood zone — a
    // region inside the flood zone avoiding the wetland? Every region of
    // this map is a rectangle, so the query lives in the paper's tractable
    // FO(Rect, Rect) fragment (Theorem 6.4) and is answered by the
    // rectangle evaluator; the generic cell-union evaluator would face an
    // exponential quantifier domain on an overlay map of this size.
    let corridor = "exists r . subset(r, FloodZone) and disjoint(r, Wetland)";
    let formula = topodb::query::parse(corridor).unwrap();
    let answer =
        topodb::query::rect_eval::eval_on_rect_instance(&db.instance(), &formula).unwrap();
    println!("dry corridor inside flood zone: {answer:?}");
}

/// A small local copy of the datagen grid generator (examples avoid dev-only
/// dependencies).
fn datagen_grid(cols: usize, rows: usize, cell: i64) -> SpatialInstance {
    let mut inst = SpatialInstance::new();
    for r in 0..rows {
        for c in 0..cols {
            let x1 = c as i64 * cell;
            let y1 = r as i64 * cell;
            inst.insert(
                format!("P{r}{c}"),
                Region::rect_from_ints(x1, y1, x1 + cell, y1 + cell),
            );
        }
    }
    inst
}
