//! Walk through the figures and worked examples of the paper and show how
//! each is reproduced by the library:
//!
//! * Fig. 1 / Examples 2.1, 4.1, 4.2 — four instances, 4-intersection
//!   equivalent in pairs yet topologically distinct, separated by
//!   region-based queries;
//! * Fig. 5 / Examples 3.1, 3.3, 3.6 — the invariant and thematic instance of
//!   Fig. 1c;
//! * Fig. 6 — the exterior face is essential;
//! * Fig. 7 — the orientation relation is essential.
//!
//! Run with: `cargo run --example paper_figures`

use topodb::invariant::{find_isomorphism, IsoOptions, Invariant};
use topodb::query::PreparedQuery;
use topodb::relations::four_intersection_equivalent;
use topodb::spatial_core::fixtures;
use topodb::TopoDatabase;

fn main() {
    // ---- Fig. 1 -----------------------------------------------------------
    println!("== Fig. 1: binary relations do not determine the topology ==");
    let fig1a = TopoDatabase::from_instance(fixtures::fig_1a());
    let fig1b = TopoDatabase::from_instance(fixtures::fig_1b());
    let fig1c = TopoDatabase::from_instance(fixtures::fig_1c());
    let fig1d = TopoDatabase::from_instance(fixtures::fig_1d());

    println!(
        "1a ~4int~ 1b: {}   homeomorphic: {}",
        four_intersection_equivalent(&fig1a.instance(), &fig1b.instance()),
        fig1a.homeomorphic_to(&fig1b)
    );
    println!(
        "1c ~4int~ 1d: {}   homeomorphic: {}",
        four_intersection_equivalent(&fig1c.instance(), &fig1d.instance()),
        fig1c.snapshot().homeomorphic_to(&fig1d.snapshot())
    );
    // The separating queries are compiled once and evaluated against the
    // snapshot of each instance — the prepared-query idiom.
    let q41 = PreparedQuery::compile("exists r . subset(r, A) and subset(r, B) and subset(r, C)")
        .unwrap();
    println!(
        "Example 4.1 query on 1a: {}, on 1b: {}",
        fig1a.snapshot().evaluate(&q41).unwrap(),
        fig1b.snapshot().evaluate(&q41).unwrap()
    );
    let q42 = PreparedQuery::compile(
        "forall r, s . (subset(r, A) and subset(r, B) and subset(s, A) and subset(s, B)) -> \
         exists t . subset(t, A) and subset(t, B) and connect(t, r) and connect(t, s)",
    )
    .unwrap();
    println!(
        "Example 4.2 query on 1c: {}, on 1d: {}",
        fig1c.snapshot().evaluate(&q42).unwrap(),
        fig1d.snapshot().evaluate(&q42).unwrap()
    );

    // ---- Fig. 5 / Examples 3.1, 3.3, 3.6 -----------------------------------
    println!("\n== Fig. 5: the invariant of Fig. 1c (Examples 3.1 / 3.3 / 3.6) ==");
    println!("{}", fig1c.invariant());
    println!("thematic(I):\n{}", fig1c.thematic());

    // ---- Fig. 6 ------------------------------------------------------------
    println!("== Fig. 6: the exterior face is essential information ==");
    let t = Invariant::of_instance(&fixtures::ring_with_flag());
    let hole = (0..t.face_count())
        .find(|&f| {
            f != t.exterior_face()
                && t.face_label(f).iter().all(|&s| s == topodb::arrangement::Sign::Exterior)
        })
        .unwrap();
    let swapped = t.with_exterior(hole);
    println!(
        "labeled graphs isomorphic (exterior ignored): {}",
        find_isomorphism(&t, &swapped, IsoOptions::without_exterior()).is_some()
    );
    println!(
        "invariants isomorphic (exterior respected):   {}",
        find_isomorphism(&t, &swapped, IsoOptions::full()).is_some()
    );

    // ---- Fig. 7 ------------------------------------------------------------
    println!("\n== Fig. 7: the orientation relation O is essential ==");
    let p1 = Invariant::of_instance(&fixtures::petals_abcd());
    let p2 = Invariant::of_instance(&fixtures::petals_acbd());
    println!(
        "G_I isomorphic (orientation ignored): {}",
        find_isomorphism(&p1, &p2, IsoOptions::without_orientation()).is_some()
    );
    println!(
        "T_I isomorphic (orientation used):    {}",
        find_isomorphism(&p1, &p2, IsoOptions::full()).is_some()
    );
}
