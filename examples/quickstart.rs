//! Quickstart: build a small topological spatial database through the
//! transactional write path, take an immutable snapshot, ask for
//! 4-intersection relations, run prepared (and binding-producing) queries —
//! including from several threads at once — and inspect the topological
//! invariant and its relational (thematic) form.
//!
//! Run with: `cargo run --example quickstart`

use topodb::query::PreparedQuery;
use topodb::spatial_core::prelude::*;
use topodb::{QueryOutput, TopoDatabase};

fn main() {
    // A toy map: a lake, a park overlapping the lake shore, and a campsite
    // inside the park but away from the water. One transaction = one batch:
    // the three inserts commit with a single epoch bump and the first read
    // pays a single arrangement construction.
    let mut db = TopoDatabase::new();
    let mut txn = db.begin();
    txn.insert("Lake", Region::polygon_from_ints(&[(0, 0), (10, 0), (10, 8), (0, 8)]).unwrap());
    txn.insert("Park", Region::rect_from_ints(6, 2, 18, 12));
    txn.insert("Camp", Region::rect_from_ints(12, 4, 15, 7));
    let commit = txn.commit();
    println!("committed {} region(s) as epoch {}", commit.changed.len(), commit.epoch);

    println!("\n== database ==\n{}", db.instance());
    println!("summary: {}\n", db.summary());

    // All reads go through an immutable snapshot: cheap to clone, Send +
    // Sync, pinned to the epoch it was taken at.
    let snap = db.snapshot();

    println!("== pairwise 4-intersection relations (Fig. 2 of the paper) ==");
    for (a, b, rel) in snap.relation_matrix() {
        println!("  {a:5} {rel:<10} {b}");
    }

    println!("\n== region-based queries (Section 4 of the paper) ==");
    let queries = [
        // Is some part of the park under water?
        "exists r . subset(r, Lake) and subset(r, Park)",
        // Is the camp dry?
        "disjoint(Camp, Lake)",
        // Is the camp strictly inside the park?
        "inside(Camp, Park)",
        // Which regions touch the park? (free name variable -> bindings)
        "overlap(ext(x), Park) or inside(ext(x), Park)",
    ];
    for text in queries {
        let q = PreparedQuery::compile(text).expect("query compiles");
        println!("  {text}\n    -> {}", snap.evaluate(&q).unwrap());
    }

    // Prepared queries are compiled once and run against any snapshot — and
    // snapshots serve concurrent readers. Four threads share one snapshot:
    let wet = PreparedQuery::compile("exists r . subset(r, ext(x)) and subset(r, Lake)").unwrap();
    std::thread::scope(|scope| {
        for worker in 0..4 {
            let snap = snap.clone(); // Arc bump, no data copied
            let wet = &wet;
            scope.spawn(move || {
                if let QueryOutput::Bindings(rows) = snap.evaluate(wet).unwrap() {
                    let names: Vec<&str> = rows.iter().map(|r| r["x"].as_str()).collect();
                    println!("  [reader {worker}] regions with a wet part: {names:?}");
                }
            });
        }
    });

    // Writes after the snapshot do not disturb it: snapshots are immutable.
    db.insert("Island", Region::rect_from_ints(2, 2, 4, 4));
    let fresh = db.snapshot();
    println!(
        "\nepoch {} snapshot: {} regions; epoch {} snapshot: {} regions",
        snap.epoch(),
        snap.len(),
        fresh.epoch(),
        fresh.len()
    );

    println!("\n== the topological invariant T_I (Section 3) ==");
    println!("{}", fresh.invariant());

    println!("== the thematic relational database thematic(I) (Corollary 3.7) ==");
    println!("{}", fresh.thematic());
}
