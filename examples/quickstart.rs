//! Quickstart: build a small topological spatial database, ask for
//! 4-intersection relations, run region-based queries, and inspect the
//! topological invariant and its relational (thematic) form.
//!
//! Run with: `cargo run --example quickstart`

use topodb::spatial_core::prelude::*;
use topodb::TopoDatabase;

fn main() {
    // A toy map: a lake, a park overlapping the lake shore, and a campsite
    // inside the park but away from the water.
    let mut db = TopoDatabase::new();
    db.insert("Lake", Region::polygon_from_ints(&[(0, 0), (10, 0), (10, 8), (0, 8)]).unwrap());
    db.insert("Park", Region::rect_from_ints(6, 2, 18, 12));
    db.insert("Camp", Region::rect_from_ints(12, 4, 15, 7));

    println!("== database ==\n{}", db.instance());
    println!("summary: {}\n", db.summary());

    println!("== pairwise 4-intersection relations (Fig. 2 of the paper) ==");
    for (a, b, rel) in db.relation_matrix() {
        println!("  {a:5} {rel:<10} {b}");
    }

    println!("\n== region-based queries (Section 4 of the paper) ==");
    let queries = [
        // Is some part of the park under water?
        "exists r . subset(r, Lake) and subset(r, Park)",
        // Is the camp dry?
        "disjoint(Camp, Lake)",
        // Is the camp strictly inside the park?
        "inside(Camp, Park)",
        // Is there a spot in the park that is neither camp nor lake?
        "exists r . subset(r, Park) and disjoint(r, Camp) and disjoint(r, Lake)",
    ];
    for q in queries {
        println!("  {q}\n    -> {:?}", db.query(q).unwrap());
    }

    println!("\n== the topological invariant T_I (Section 3) ==");
    println!("{}", db.invariant());

    println!("== the thematic relational database thematic(I) (Corollary 3.7) ==");
    println!("{}", db.thematic());
}
