//! Print the eight 4-intersection (Egenhofer) relations of Fig. 2 with their
//! defining matrices, verify them on canonical witness pairs, and show the
//! composition table in action (the algebra behind topological inference).
//!
//! Run with: `cargo run --example egenhofer_matrix`

use topodb::query::PreparedQuery;
use topodb::relations::{compose, relation_between, Relation4, RelationSet};
use topodb::spatial_core::fixtures;
use topodb::TopoDatabase;

fn main() {
    println!("The eight 4-intersection relations (paper Fig. 2):\n");
    println!("{:<12} {:>8} {:>8} {:>8} {:>8}", "relation", "int/int", "bnd/bnd", "int/bnd", "bnd/int");
    // One prepared query, compiled once, answers "which pairs (x, y) are in
    // relation R?" on the snapshot of every witness instance.
    let witness_queries: Vec<(Relation4, PreparedQuery)> = Relation4::ALL
        .into_iter()
        .map(|r| {
            let q = PreparedQuery::compile(&format!("{}(ext(x), ext(y))", r.name())).unwrap();
            (r, q)
        })
        .collect();
    for (name, inst) in fixtures::fig_2_pairs() {
        let a = inst.ext("A").unwrap();
        let b = inst.ext("B").unwrap();
        let rel = relation_between(a, b);
        let m = rel.to_matrix();
        assert_eq!(rel.name(), name, "fixture realizes its intended relation");
        println!(
            "{:<12} {:>8} {:>8} {:>8} {:>8}",
            rel.name(),
            m.interiors,
            m.boundaries,
            m.interior_a_boundary_b,
            m.boundary_a_interior_b
        );
        // Cross-check against the cell-complex evaluator: on this witness
        // pair, the binding-producing query for `rel` returns (A, B).
        let snap = TopoDatabase::from_instance(inst).snapshot();
        let (_, q) = witness_queries.iter().find(|(r, _)| *r == rel).unwrap();
        let rows = snap.evaluate(q).unwrap();
        let found = rows
            .bindings()
            .unwrap()
            .iter()
            .any(|row| row["x"] == "A" && row["y"] == "B");
        assert!(found, "{name}: snapshot query agrees with the geometric relation");
    }

    println!("\nComposition (weak) of selected relation pairs:");
    let pairs = [
        (Relation4::Inside, Relation4::Inside),
        (Relation4::Meet, Relation4::Inside),
        (Relation4::Overlap, Relation4::Contains),
        (Relation4::Disjoint, Relation4::Contains),
    ];
    for (r1, r2) in pairs {
        let composed: Vec<&str> = compose(r1, r2).iter().map(Relation4::name).collect();
        println!("  {:<10} ; {:<10} -> {}", r1.name(), r2.name(), composed.join(", "));
    }

    println!("\nA full row of the composition table (r ; equal = r):");
    for r in Relation4::ALL {
        assert_eq!(compose(r, Relation4::Equal), RelationSet::singleton(r));
    }
    println!("  verified.");
}
