//! Property-based integration tests over randomly generated instances:
//! structural invariants of the whole pipeline (arrangement → invariant →
//! isomorphism → thematic) that the paper's theorems guarantee.

use proptest::prelude::*;
use topodb::invariant::Invariant;
use topodb::spatial_core::prelude::*;

/// Strategy: a small instance of 1–4 random rectangles with coordinates in a
/// modest range (kept small so the whole pipeline stays fast under proptest).
fn small_instance() -> impl Strategy<Value = SpatialInstance> {
    prop::collection::vec((0i64..20, 0i64..20, 1i64..10, 1i64..10), 1..4).prop_map(|rects| {
        let mut inst = SpatialInstance::new();
        for (i, (x, y, w, h)) in rects.into_iter().enumerate() {
            inst.insert(format!("R{i}"), Region::rect_from_ints(x, y, x + w, y + h));
        }
        inst
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Euler's formula holds for every generated arrangement, and the
    /// invariant it induces passes the Lemma 3.9 validity check.
    #[test]
    fn arrangements_are_planar_and_invariants_valid(inst in small_instance()) {
        let complex = topodb::arrangement::build_complex(&inst);
        prop_assert!(complex.euler_formula_holds());
        let inv = Invariant::from_complex(&complex);
        prop_assert!(topodb::invariant::validate(&inv).is_empty());
        prop_assert_eq!(inv.face_count(), complex.face_count());
    }

    /// Translating an instance (a homeomorphism) never changes its invariant
    /// up to isomorphism, and the isomorphism relation is reflexive.
    #[test]
    fn translation_invariance(inst in small_instance(), dx in -15i64..15, dy in -15i64..15) {
        let inv = Invariant::of_instance(&inst);
        prop_assert!(topodb::invariant::isomorphic(&inv, &inv));
        let moved = Invariant::of_instance(&inst.translated(dx, dy));
        prop_assert!(topodb::invariant::isomorphic(&inv, &moved));
    }

    /// Pairwise 4-intersection relations are converse-consistent and the
    /// relation with itself is `equal`.
    #[test]
    fn relations_are_converse_consistent(inst in small_instance()) {
        let complex = topodb::arrangement::build_complex(&inst);
        let names = inst.names();
        for a in &names {
            for b in &names {
                let ab = topodb::relations::relation_in_complex(&complex, a, b).unwrap();
                let ba = topodb::relations::relation_in_complex(&complex, b, a).unwrap();
                prop_assert_eq!(ab.inverse(), ba);
                if a == b {
                    prop_assert_eq!(ab, topodb::relations::Relation4::Equal);
                }
            }
        }
    }

    /// The snapshot read path agrees with the direct geometric computation:
    /// the binding rows of the set-returning `overlap(ext(x), ext(y))`
    /// prepared query are exactly the overlapping pairs of the relation
    /// matrix, and they are symmetric in x and y.
    #[test]
    fn snapshot_bindings_agree_with_relation_matrix(inst in small_instance()) {
        use topodb::query::PreparedQuery;
        let db = topodb::TopoDatabase::from_instance(inst.clone());
        let snap = db.snapshot();
        let q = PreparedQuery::compile("overlap(ext(x), ext(y))").unwrap();
        let out = snap.evaluate(&q).unwrap();
        let rows = out.bindings().unwrap();
        for (a, b, r) in snap.relation_matrix() {
            let ab = rows.iter().any(|row| row["x"] == a && row["y"] == b);
            let ba = rows.iter().any(|row| row["x"] == b && row["y"] == a);
            prop_assert_eq!(ab, r == topodb::relations::Relation4::Overlap);
            prop_assert_eq!(ab, ba);
        }
        // No reflexive rows: a region relates to itself by `equal`.
        prop_assert!(rows.iter().all(|row| row["x"] != row["y"]));
    }

    /// The thematic database always contains the full schema and one
    /// RegionFaces fact per (region, face-of-region) pair.
    #[test]
    fn thematic_schema_is_complete(inst in small_instance()) {
        let inv = Invariant::of_instance(&inst);
        let th = topodb::invariant::thematic::to_database(&inv);
        for rel in topodb::invariant::thematic::TH_RELATIONS {
            prop_assert!(th.relation(rel).is_some());
        }
        let expected: usize = inst
            .names()
            .iter()
            .map(|n| inv.region_faces(n).len())
            .sum();
        prop_assert_eq!(th.relation("RegionFaces").unwrap().len(), expected);
    }
}
