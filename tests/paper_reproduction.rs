//! End-to-end integration tests reproducing, across crate boundaries, every
//! qualitative claim of the paper that the benchmark harness also measures.
//! Each test corresponds to an experiment listed in `EXPERIMENTS.md`.

use topodb::invariant::{find_isomorphism, homeomorphic, IsoOptions, Invariant};
use topodb::query::ast::{Formula, RegionExpr};
use topodb::query::thematic_eval::eval_on_thematic;
use topodb::relations::{
    all_pairwise_relations, four_intersection_equivalent, relation_in_complex, Relation4,
};
use topodb::spatial_core::fixtures;
use topodb::spatial_core::prelude::*;
use topodb::TopoDatabase;

/// E01 — Fig. 1 / Examples 2.1, 4.1, 4.2: the four instances are pairwise
/// 4-intersection equivalent (a~b, c~d) but not homeomorphic, and the
/// region-based queries of Section 4 separate them.
#[test]
fn e01_fig1_four_instances() {
    let (a, b, c, d) =
        (fixtures::fig_1a(), fixtures::fig_1b(), fixtures::fig_1c(), fixtures::fig_1d());
    assert!(four_intersection_equivalent(&a, &b));
    assert!(four_intersection_equivalent(&c, &d));
    assert!(!homeomorphic(&a, &b));
    assert!(!homeomorphic(&c, &d));

    let dba = TopoDatabase::from_instance(a);
    let dbb = TopoDatabase::from_instance(b);
    let dbc = TopoDatabase::from_instance(c);
    let dbd = TopoDatabase::from_instance(d);
    let q41 = "exists r . subset(r, A) and subset(r, B) and subset(r, C)";
    assert_eq!(dba.query(q41), Ok(true));
    assert_eq!(dbb.query(q41), Ok(false));
    let q42 = "forall r, s . (subset(r, A) and subset(r, B) and subset(s, A) and subset(s, B)) -> \
               exists t . subset(t, A) and subset(t, B) and connect(t, r) and connect(t, s)";
    assert_eq!(dbc.query(q42), Ok(true));
    assert_eq!(dbd.query(q42), Ok(false));
}

/// E01b — Example 4.1 as a *set-returning* query: with the third region a
/// free name variable, the prepared query returns exactly the names whose
/// extent still admits a common witness with A and B — all three names on
/// Fig. 1a, but not `C` on Fig. 1b. One `PreparedQuery`, compiled once,
/// evaluated against snapshots of both instances.
#[test]
fn e01b_example_4_1_with_free_variable_bindings() {
    use topodb::query::PreparedQuery;
    use topodb::QueryOutput;

    let q = PreparedQuery::compile("exists r . subset(r, A) and subset(r, B) and subset(r, ext(x))")
        .unwrap();
    assert_eq!(q.free_name_vars(), ["x"]);

    let xs = |out: QueryOutput| -> Vec<String> {
        out.bindings().unwrap().iter().map(|row| row["x"].clone()).collect()
    };
    let snap_a = TopoDatabase::from_instance(fixtures::fig_1a()).snapshot();
    assert_eq!(
        xs(snap_a.evaluate(&q).unwrap()),
        ["A", "B", "C"],
        "Fig. 1a: A ∩ B ∩ C is nonempty, so every extent hosts a witness"
    );
    let snap_b = TopoDatabase::from_instance(fixtures::fig_1b()).snapshot();
    assert_eq!(
        xs(snap_b.evaluate(&q).unwrap()),
        ["A", "B"],
        "Fig. 1b: the triple intersection is empty, so C drops out"
    );

    // The Boolean collapse of the same bindings agrees with Example 4.1.
    assert!(snap_a.evaluate(&q).unwrap().holds());
    assert!(snap_b.evaluate(&q).unwrap().holds());
}

/// E02 — Fig. 2: the eight 4-intersection relations are realized, computed,
/// mutually exclusive and converse-consistent.
#[test]
fn e02_fig2_eight_relations() {
    let mut seen = Vec::new();
    for (name, inst) in fixtures::fig_2_pairs() {
        let complex = topodb::arrangement::build_complex(&inst);
        let rel = relation_in_complex(&complex, "A", "B").unwrap();
        assert_eq!(rel.name(), name);
        let rel_ba = relation_in_complex(&complex, "B", "A").unwrap();
        assert_eq!(rel.inverse(), rel_ba);
        seen.push(rel);
    }
    seen.sort();
    seen.dedup();
    assert_eq!(seen.len(), 8);
}

/// E03 — Fig. 3 / Fig. 4: region class membership and invariance under the
/// permutation groups S and L behaves as the paper's table states.
#[test]
fn e03_fig4_class_invariance() {
    // A rectangle stays a rectangle under S but not under a shear from L.
    let rect = Region::rect_from_ints(0, 0, 6, 4);
    let rho = MonotoneMap::from_ints(&[(0, 0), (2, 3), (6, 5), (10, 20)]).unwrap();
    let s = PlaneTransform::Symmetry(Symmetry { rho1: rho.clone(), rho2: rho, swap: false });
    assert_eq!(s.apply_region(&rect).unwrap().class(), RegionClass::Rect);
    let shear = PlaneTransform::Affine(AffineMap::shear_x(rat(1)));
    assert_eq!(shear.apply_region(&rect).unwrap().class(), RegionClass::Poly);
    // A triangle stays polygonal under L.
    let tri = Region::polygon_from_ints(&[(0, 0), (6, 0), (2, 5)]).unwrap();
    assert!(shear.apply_region(&tri).unwrap().is_in_class(RegionClass::Poly));
    // The full Fig. 4 table.
    for class in RegionClass::all() {
        for group in [Group::Symmetries, Group::PiecewiseLinear, Group::Homeomorphisms] {
            let _ = class_invariant_under(class, group);
        }
    }
    assert!(class_invariant_under(RegionClass::Disc, Group::Homeomorphisms));
    assert!(!class_invariant_under(RegionClass::Poly, Group::Homeomorphisms));
}

/// E04/E09 — Fig. 5, Examples 3.1/3.3/3.6: the invariant and thematic
/// instance of Fig. 1c have exactly the structure listed in the paper.
#[test]
fn e04_fig5_invariant_of_fig1c() {
    let inv = Invariant::of_instance(&fixtures::fig_1c());
    assert_eq!(
        (inv.vertex_count(), inv.edge_count(), inv.face_count()),
        (2, 4, 4),
        "Example 3.1"
    );
    assert_eq!(inv.orientation_relation().len(), 16, "Example 3.3");
    let th = topodb::invariant::thematic::to_database(&inv);
    assert_eq!(th.relation("FaceEdges").unwrap().len(), 8, "Fig. 9");
    assert_eq!(th.relation("RegionFaces").unwrap().len(), 4, "Fig. 9");
}

/// E05 — Fig. 6: same labeled graph, different exterior face, different
/// homeomorphism type.
#[test]
fn e05_fig6_exterior_face_is_essential() {
    let t = Invariant::of_instance(&fixtures::ring_with_flag());
    let hole = (0..t.face_count())
        .find(|&f| {
            f != t.exterior_face()
                && t.face_label(f).iter().all(|&s| s == topodb::arrangement::Sign::Exterior)
        })
        .unwrap();
    let swapped = t.with_exterior(hole);
    assert!(find_isomorphism(&t, &swapped, IsoOptions::without_exterior()).is_some());
    assert!(find_isomorphism(&t, &swapped, IsoOptions::full()).is_none());
    // The redesignated structure is still a valid invariant (realizable).
    assert!(topodb::invariant::is_valid(&swapped));
}

/// E06 — Fig. 7: the orientation relation O is essential, for connected and
/// for disconnected instances.
#[test]
fn e06_fig7_orientation_is_essential() {
    let p1 = Invariant::of_instance(&fixtures::petals_abcd());
    let p2 = Invariant::of_instance(&fixtures::petals_acbd());
    assert!(find_isomorphism(&p1, &p2, IsoOptions::without_orientation()).is_some());
    assert!(find_isomorphism(&p1, &p2, IsoOptions::full()).is_none());
    // Disconnected variant: add a far-away island to both.
    let mut i1 = fixtures::petals_abcd();
    i1.insert("Z", Region::rect_from_ints(100, 100, 104, 104));
    let mut i2 = fixtures::petals_acbd();
    i2.insert("Z", Region::rect_from_ints(200, -50, 204, -46));
    let j1 = Invariant::of_instance(&i1);
    let j2 = Invariant::of_instance(&i2);
    assert!(find_isomorphism(&j1, &j2, IsoOptions::without_orientation()).is_some());
    assert!(find_isomorphism(&j1, &j2, IsoOptions::full()).is_none());
}

/// E07 — Theorem 3.4: homeomorphism coincides with invariant isomorphism;
/// transformations from S and L (which are homeomorphisms) preserve the
/// invariant, and embedding differences are detected.
#[test]
fn e07_theorem_3_4() {
    for inst in [fixtures::fig_1a(), fixtures::fig_1d(), fixtures::ring(), fixtures::shared_boundary()] {
        let inv = Invariant::of_instance(&inst);
        // Translation + scaling (elements of L).
        let t = PlaneTransform::Affine(AffineMap::translation(rat(17), rat(-3)));
        let s = PlaneTransform::Affine(AffineMap::scaling(rat(3), rat(2)));
        for map in [t, s] {
            let image = map.apply_instance(&inst).unwrap();
            assert!(topodb::invariant::isomorphic(&inv, &Invariant::of_instance(&image)));
        }
        // A reflection is a homeomorphism too.
        let m = PlaneTransform::Affine(AffineMap::reflect_x()).apply_instance(&inst).unwrap();
        assert!(topodb::invariant::isomorphic(&inv, &Invariant::of_instance(&m)));
    }
    assert!(!homeomorphic(&fixtures::ring_with_island(true), &fixtures::ring_with_island(false)));
}

/// E08 — Theorem 3.5: the invariant is computed in polynomial time; the cell
/// complex of a grid map has the predicted size and satisfies Euler's formula.
#[test]
fn e08_theorem_3_5_construction() {
    for (n, inst) in datagen::scaling_sweep(&[4, 9, 16, 25]) {
        let complex = topodb::arrangement::build_complex(&inst);
        assert!(complex.euler_formula_holds(), "grid of {n}");
        // A side x side grid of parcels has one bounded face per parcel and
        // (side+1)^2 - 4 vertices in the *maximal* complex (the four outer
        // corners are plain bends of a single parcel boundary and are merged
        // away).
        let side = (n as f64).sqrt() as usize;
        assert_eq!(complex.face_count(), n + 1);
        assert_eq!(complex.vertex_count(), (side + 1) * (side + 1) - 4);
    }
}

/// E10 — Corollary 3.7: topological queries answered on thematic(I) agree
/// with direct geometric evaluation.
#[test]
fn e10_corollary_3_7_thematic_bridge() {
    let inst = datagen::grid_map(3, 2, 5);
    let complex = topodb::arrangement::build_complex(&inst);
    let th = topodb::invariant::thematic::to_database(&Invariant::from_complex(&complex));
    let names = inst.names();
    for a in &names {
        for b in &names {
            if a >= b {
                continue;
            }
            let expected = relation_in_complex(&complex, a, b).unwrap();
            for r in Relation4::ALL {
                let q = Formula::rel(r, RegionExpr::named(*a), RegionExpr::named(*b));
                assert_eq!(eval_on_thematic(&th, &q).unwrap(), r == expected, "{a} {r} {b}");
            }
        }
    }
}

/// E11 — Theorem 3.8 / Lemma 3.9: constructed invariants validate; corrupted
/// ones are rejected.
#[test]
fn e11_theorem_3_8_validation() {
    for inst in [fixtures::fig_1b(), fixtures::ring_with_island(true), datagen::grid_map(3, 3, 4)] {
        let inv = Invariant::of_instance(&inst);
        assert!(topodb::invariant::is_valid(&inv));
    }
    // Corruption: claim a region's face is exterior to it (breaks label
    // consistency and possibly region connectivity).
    let broken = Invariant::of_instance(&fixtures::fig_1a());
    let f = broken.region_faces("A")[0];
    // Reuse the public API only: re-designating an interior face as exterior
    // face is enough to violate validity.
    let broken = broken.with_exterior(f);
    assert!(!topodb::invariant::is_valid(&broken));
}

/// E12 — Fig. 10 / Fig. 11 / Theorem 4.4: S-genericity of FO(Rect, ·) and the
/// genericity table.
#[test]
fn e12_genericity_and_expressiveness() {
    assert_eq!(genericity_group(RegionClass::Rect), Group::Symmetries);
    assert_eq!(genericity_group(RegionClass::Alg), Group::PiecewiseLinear);
    assert_eq!(genericity_group(RegionClass::Disc), Group::Homeomorphisms);
    // S-transformations do not change FO(Rect, Rect) answers.
    let inst = SpatialInstance::from_regions([
        ("A", Region::rect_from_ints(0, 0, 8, 8)),
        ("B", Region::rect_from_ints(2, 2, 5, 5)),
        ("C", Region::rect_from_ints(6, 6, 12, 12)),
    ]);
    let rho = MonotoneMap::from_ints(&[(0, 0), (3, 1), (8, 30), (12, 31)]).unwrap();
    let s = PlaneTransform::Symmetry(Symmetry { rho1: rho.clone(), rho2: rho, swap: false });
    let image = s.apply_instance(&inst).unwrap();
    for q in [
        "exists r . inside(r, A) and inside(r, C)",
        "forall r . inside(r, B) -> inside(r, A)",
        "exists r . covers(A, r) and overlap(r, C)",
    ] {
        let f = topodb::query::parse(q).unwrap();
        assert_eq!(
            topodb::query::rect_eval::eval_on_rect_instance(&inst, &f).unwrap(),
            topodb::query::rect_eval::eval_on_rect_instance(&image, &f).unwrap(),
            "{q}"
        );
    }
}

/// E14 — Proposition 5.1 / Theorem 5.6: the class-defining sentence is
/// produced in polynomial time and membership in the equivalence class it
/// defines coincides with homeomorphism.
#[test]
fn e14_completeness_normal_form() {
    let c = Invariant::of_instance(&fixtures::fig_1c());
    let sentence = topodb::query::complete::class_defining_sentence(&c);
    assert!(sentence.region_quantifier_count() >= c.cell_count());
    let moved = Invariant::of_instance(&fixtures::fig_1c().translated(5, 5));
    let other = Invariant::of_instance(&fixtures::fig_1d());
    assert!(topodb::query::complete::defines_equivalence_class_of(&c, &moved));
    assert!(!topodb::query::complete::defines_equivalence_class_of(&c, &other));
}

/// E15 — Theorem 5.8: translated point-language queries agree with the
/// region-based rectangle evaluator.
#[test]
fn e15_point_vs_region_language() {
    let inst = SpatialInstance::from_regions([
        ("A", Region::rect_from_ints(0, 0, 10, 10)),
        ("B", Region::rect_from_ints(2, 2, 6, 6)),
        ("C", Region::rect_from_ints(12, 0, 16, 4)),
    ]);
    for q in ["inside(B, A)", "disjoint(B, C)", "overlap(A, B)", "meet(A, B) or disjoint(A, C)"] {
        let f = topodb::query::parse(q).unwrap();
        let p = topodb::query::point_lang::rect_query_to_point_query(&f).unwrap();
        assert_eq!(
            topodb::query::point_lang::eval_point_sentence(&inst, &p).unwrap(),
            topodb::query::rect_eval::eval_on_rect_instance(&inst, &f).unwrap(),
            "{q}"
        );
    }
}

/// E17 — [GPP95] / Section 6: topological inference over the existential
/// fragment — constraint networks from real instances are satisfiable, and
/// impossible networks are refuted.
#[test]
fn e17_topological_inference() {
    use topodb::relations::{ConstraintNetwork, RelationSet};
    let net = topodb::relations::network_of_instance(&datagen::grid_map(3, 2, 4));
    assert!(net.is_satisfiable());
    let mut bad = ConstraintNetwork::unconstrained(3);
    bad.constrain_base(0, 1, Relation4::Inside);
    bad.constrain_base(1, 2, Relation4::Inside);
    bad.constrain(0, 2, RelationSet::from_slice(&[Relation4::Disjoint, Relation4::Meet]));
    assert!(!bad.is_satisfiable());
}

/// Cross-cutting sanity: every pairwise relation reported by the geometric
/// engine is consistent with the composition table (soundness on random-ish
/// workloads).
#[test]
fn composition_soundness_on_generated_workloads() {
    for seed in [1u64, 7, 23] {
        let inst = datagen::random_rectangles(6, 30, seed);
        let rels = all_pairwise_relations(&inst);
        let names: Vec<String> = inst.names().into_iter().map(String::from).collect();
        let lookup = |x: &str, y: &str| -> Relation4 {
            if x == y {
                return Relation4::Equal;
            }
            rels.iter()
                .find_map(|(a, b, r)| {
                    if a == x && b == y {
                        Some(*r)
                    } else if a == y && b == x {
                        Some(r.inverse())
                    } else {
                        None
                    }
                })
                .unwrap()
        };
        for a in &names {
            for b in &names {
                for c in &names {
                    if a == b || b == c || a == c {
                        continue;
                    }
                    let composed = topodb::relations::compose(lookup(a, b), lookup(b, c));
                    assert!(composed.contains(lookup(a, c)), "{a},{b},{c} seed {seed}");
                }
            }
        }
    }
}
