//! Offline shim for the subset of the `proptest` crate API this workspace
//! uses.
//!
//! The build container has no access to crates.io, so the property-based
//! tests run on this minimal, API-compatible core: the [`proptest!`] macro,
//! range / tuple / `prop_map` / `prop::collection::vec` strategies and the
//! `prop_assert!` family. Unlike the real proptest there is no shrinking —
//! a failing case reports its inputs (via `Debug` in the assertion message)
//! and panics. Case generation is deterministic: case `i` of every test uses
//! a fixed seed derived from `i`, so failures reproduce exactly across runs.

#![forbid(unsafe_code)]

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let width = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(width) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
}

pub mod collection {
    //! Collection strategies (`prop::collection` in the real crate).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy for `Vec`s whose length is drawn from `len` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let width = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(width) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! The per-test driver: configuration and deterministic RNG.

    /// Configuration for a `proptest!` block.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 64 }
        }
    }

    /// Deterministic per-case RNG (SplitMix64 seeded by the case index).
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The RNG for case number `case` (fixed across runs).
        pub fn for_case(case: u64) -> Self {
            TestRng { state: 0xA076_1D64_78BD_642F ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15) }
        }

        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound == 0` yields `0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound <= 1 {
                return 0;
            }
            if bound.is_power_of_two() {
                return self.next_u64() & (bound - 1);
            }
            let zone = u64::MAX - (u64::MAX % bound);
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % bound;
                }
            }
        }
    }
}

pub mod prelude {
    //! The usual glob import, mirroring `proptest::prelude::*`.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of the `prop` module path used as `prop::collection::vec`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Assert a condition inside a `proptest!` body; on failure the case's
/// inputs are reported and the test fails without running further cases.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Define property tests: an optional `#![proptest_config(…)]` header
/// followed by `#[test] fn name(binding in strategy, …) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()); $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::TestRng::for_case(case as u64);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let result = (|| -> ::std::result::Result<(), String> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(message) = result {
                    panic!(
                        "proptest case {case} failed: {message}\n  inputs: {}",
                        [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),+]
                            .join(", ")
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_in_bounds(x in 3i64..17, y in 0usize..4) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 4);
        }

        #[test]
        fn vec_and_map(v in prop::collection::vec((0i64..10, 0i64..10), 1..5)
            .prop_map(|pairs| pairs.into_iter().map(|(a, b)| a + b).collect::<Vec<_>>()))
        {
            prop_assert!(!v.is_empty() && v.len() < 5);
            for s in &v {
                prop_assert!((0..19).contains(s));
            }
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0i32..5) {
            prop_assert_eq!(x, x);
            prop_assert_ne!(x, x + 1);
        }
    }

    #[test]
    fn deterministic_cases() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let s = 0i64..1000;
        let a: Vec<i64> =
            (0..16).map(|c| s.generate(&mut TestRng::for_case(c))).collect();
        let b: Vec<i64> =
            (0..16).map(|c| s.generate(&mut TestRng::for_case(c))).collect();
        assert_eq!(a, b);
    }
}
