//! Offline shim for the subset of the `criterion` crate API this workspace
//! uses.
//!
//! The build container has no access to crates.io, so the benchmark harness
//! is backed by this minimal, API-compatible measurement core instead of the
//! real Criterion. It supports:
//!
//! * [`Criterion::benchmark_group`] / [`BenchmarkGroup::bench_function`] /
//!   [`BenchmarkGroup::bench_with_input`] / [`Bencher::iter`],
//! * the [`criterion_group!`] / [`criterion_main!`] macros (both the
//!   `name = …; config = …; targets = …` form and the plain list form),
//! * `--test` smoke mode (each routine runs exactly once — this is what
//!   `cargo bench -- --test` and `cargo test --benches` exercise in CI),
//! * a positional substring filter on benchmark ids,
//! * machine-readable output: when the `BENCH_JSON` environment variable is
//!   set, a JSON array of `{id, ns_per_iter, samples}` records is written to
//!   that path at exit (used by `scripts/bench_snapshot.sh`).
//!
//! Reported numbers are medians of per-sample means, which is enough for the
//! relative comparisons the harness makes (e.g. sweep vs. naive splitting);
//! absolute numbers are not comparable with real-Criterion output.

#![forbid(unsafe_code)]

use std::fmt;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// The benchmark driver: measurement configuration plus CLI-derived mode.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let mut test_mode = false;
        let mut filter = None;
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => test_mode = true,
                s if !s.starts_with('-') && filter.is_none() => filter = Some(s.to_string()),
                _ => {}
            }
        }
        Criterion {
            sample_size: 10,
            warm_up_time: Duration::from_millis(200),
            measurement_time: Duration::from_millis(500),
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Set the number of measurement samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Set the warm-up duration per benchmark.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Set the target total measurement duration per benchmark.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&self, id: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !id.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
            f(&mut b);
            println!("test {id} ... ok");
            return;
        }

        // Warm-up: run with growing iteration counts until the warm-up budget
        // is spent, producing a per-iteration estimate.
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        let warm_start = Instant::now();
        let mut per_iter = Duration::from_nanos(1);
        while warm_start.elapsed() < self.warm_up_time {
            f(&mut b);
            if b.elapsed > Duration::ZERO {
                per_iter = b.elapsed / (b.iters as u32);
            }
            if b.iters < 1 << 30 {
                b.iters *= 2;
            }
        }

        // Measurement: `sample_size` samples, each sized to fill an equal
        // share of the measurement budget.
        let per_sample = self.measurement_time / (self.sample_size as u32);
        let iters = (per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 30) as u64;
        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            b.iters = iters;
            f(&mut b);
            samples_ns.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples_ns.sort_by(|a, c| a.partial_cmp(c).expect("durations are finite"));
        let median = samples_ns[samples_ns.len() / 2];
        println!(
            "bench: {id} ... {:>12.1} ns/iter (samples={}, iters/sample={})",
            median, self.sample_size, iters
        );
        results().lock().expect("results lock").push(BenchResult {
            id: id.to_string(),
            ns_per_iter: median,
            samples: self.sample_size,
        });
    }
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Run a benchmark with no explicit input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Run a benchmark parameterized by a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Finish the group (reporting happens eagerly; this is a no-op kept for
    /// API compatibility).
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{}", name.into(), parameter) }
    }

    /// An id made of a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// The per-benchmark timing driver handed to the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, running it as many times as the driver requested.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export of `std::hint::black_box` for API compatibility.
pub use std::hint::black_box;

struct BenchResult {
    id: String,
    ns_per_iter: f64,
    samples: usize,
}

fn results() -> &'static Mutex<Vec<BenchResult>> {
    static RESULTS: OnceLock<Mutex<Vec<BenchResult>>> = OnceLock::new();
    RESULTS.get_or_init(|| Mutex::new(Vec::new()))
}

struct MetricResult {
    id: String,
    value: f64,
}

fn metrics() -> &'static Mutex<Vec<MetricResult>> {
    static METRICS: OnceLock<Mutex<Vec<MetricResult>>> = OnceLock::new();
    METRICS.get_or_init(|| Mutex::new(Vec::new()))
}

/// Record a non-timing work metric (a counter: assignments tried, index
/// probes, bytes moved, …) to be emitted alongside the timing records when
/// `BENCH_JSON` is set, as `{"id": …, "value": …}`. Consumers keying on
/// `ns_per_iter` (the perf-trajectory gates) skip these records naturally.
/// This is an extension over the real Criterion API, used by the bench
/// harness to persist planner work counters into the benchmark snapshot.
pub fn record_metric(id: impl Into<String>, value: f64) {
    let id = id.into();
    println!("metric: {id} ... {value}");
    metrics().lock().expect("metrics lock").push(MetricResult { id, value });
}

/// Support machinery used by the macros; not part of the public API surface.
pub mod private {
    use super::results;
    use std::io::Write;

    fn json_escape(s: &str) -> String {
        s.chars()
            .flat_map(|c| match c {
                '"' => "\\\"".chars().collect::<Vec<_>>(),
                '\\' => "\\\\".chars().collect(),
                c if (c as u32) < 0x20 => format!("\\u{:04x}", c as u32).chars().collect(),
                c => vec![c],
            })
            .collect()
    }

    /// Write collected results to `$BENCH_JSON` (if set) as a JSON array:
    /// timing records first, then any work-metric records from
    /// [`record_metric`](super::record_metric).
    pub fn finalize() {
        let Ok(path) = std::env::var("BENCH_JSON") else { return };
        if path.is_empty() {
            return;
        }
        let results = results().lock().expect("results lock");
        let metrics = super::metrics().lock().expect("metrics lock");
        let total = results.len() + metrics.len();
        let mut out = String::from("[\n");
        let mut emitted = 0usize;
        for r in results.iter() {
            emitted += 1;
            out.push_str(&format!(
                "  {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"samples\": {}}}{}\n",
                json_escape(&r.id),
                r.ns_per_iter,
                r.samples,
                if emitted < total { "," } else { "" }
            ));
        }
        for m in metrics.iter() {
            emitted += 1;
            out.push_str(&format!(
                "  {{\"id\": \"{}\", \"value\": {}}}{}\n",
                json_escape(&m.id),
                m.value,
                if emitted < total { "," } else { "" }
            ));
        }
        out.push_str("]\n");
        match std::fs::File::create(&path).and_then(|mut f| f.write_all(out.as_bytes())) {
            Ok(()) => eprintln!("wrote {total} benchmark record(s) to {path}"),
            Err(e) => eprintln!("failed to write BENCH_JSON={path}: {e}"),
        }
    }
}

/// Define a benchmark group: either
/// `criterion_group!(name, target1, target2)` or the configured form
/// `criterion_group! { name = n; config = expr; targets = t1, t2 }`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Define the benchmark binary's `main`, running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::private::finalize();
        }
    };
}
