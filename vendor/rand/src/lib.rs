//! Offline shim for the subset of the `rand` crate API this workspace uses.
//!
//! The build container has no access to crates.io, so the workspace vendors a
//! minimal, API-compatible replacement: [`rngs::StdRng`], [`SeedableRng`] and
//! [`Rng::gen_range`] over integer ranges. The generator is a SplitMix64 —
//! deterministic in the seed, which is the only property the workload
//! generators in `datagen` rely on. The streams differ from upstream `rand`,
//! so seeds are *not* reproducible against the real crate.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample from the given integer range. Panics if empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// A Bernoulli draw: `true` with probability `p`. Panics unless
    /// `0.0 <= p <= 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1]");
        // Compare 53 uniform mantissa bits against p, as upstream rand does.
        let v = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        v < p
    }
}

impl<T: RngCore> Rng for T {}

/// A range that can produce a uniform sample (mirror of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Sample a single value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` below `bound` (> 0) without modulo bias, by rejection on the
/// top of the range.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let width = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, width);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let width = (hi as i128 - lo as i128) as u64;
                if width == u64::MAX {
                    return (lo as i128 + rng.next_u64() as i128) as $t;
                }
                let off = uniform_below(rng, width + 1);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, one
            // 64-bit word of state, and trivially seedable — ample for
            // deterministic workload generation.
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<i64> = (0..32).map(|_| a.gen_range(0i64..1000)).collect();
        let vb: Vec<i64> = (0..32).map(|_| b.gen_range(0i64..1000)).collect();
        let vc: Vec<i64> = (0..32).map(|_| c.gen_range(0i64..1000)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(3i64..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(5usize..=9);
            assert!((5..=9).contains(&w));
            let x = rng.gen_range(-10i32..=10);
            assert!((-10..=10).contains(&x));
        }
        // Tight one-element ranges work.
        assert_eq!(rng.gen_range(4i64..5), 4);
        assert_eq!(rng.gen_range(4usize..=4), 4);
    }

    #[test]
    fn covers_whole_range() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 8];
        for _ in 0..512 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
